package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/executor"
	"repro/internal/session"
)

// This file composes the per-layer Snapshot/Restore seams into one durable
// fleet checkpoint: the shared campaign state (union virgin map, shared
// corpus with journal and peer cursors, relay crash bank), the fleet's
// merge-protocol cursors, and every worker engine's full state — RNG
// stream position, campaign counters, coverage, corpus, crash bank,
// mutation queue, retained valuable seeds, adaptive-scheduler tables, and
// session-fuzzing state.
//
// Checkpoints are taken at merge-window boundaries only: Checkpoint and
// RestoreCheckpoint have the same concurrency contract as Stats — the
// fleet must be quiescent (no Drive in flight). That is what makes the
// snapshot a consistent cut with no worker stream perturbed: between Drive
// calls every pending batch is empty, every scheduler round is closed, and
// the workers' RNG states are exactly "about to generate the next round".
//
// What is deliberately NOT restored from a worker section: the arena and
// its per-round scratch (dead between steps by construction), the sticky
// backend error (the restored campaign runs a fresh backend), and the
// per-batch dedup filter. Retained valuable instances ARE restored — their
// rendered bytes are re-cracked against the (digest-pinned) models — so a
// warm restart keeps its mutation bases instead of re-learning them.

// Section IDs of the fleet checkpoint envelope, in the order Seal emits
// them: one meta section, the three shared-state sections, then one worker
// section per worker engine in worker order.
const (
	secFleetMeta    = 1
	secSharedVirgin = 2
	secSharedCorpus = 3
	secSharedCrash  = 4
	secWorker       = 5
)

// Checkpoint serializes the fleet's full campaign state into a canonical
// checkpoint envelope stamped with the campaign's model digest. Must not
// be called while a Drive is in flight; at quiescence the encoding is a
// pure function of campaign state, so checkpoint → restore → checkpoint
// reproduces the identical byte string.
func (f *Fleet) Checkpoint(digest uint64) []byte {
	var meta checkpoint.Writer
	meta.Int(len(f.workers))
	for _, p := range f.peers {
		meta.Int(p.pushed)
		meta.Int(p.pulled)
		meta.Int(p.crashesSeen)
	}
	sections := make([]checkpoint.Section, 0, 4+len(f.workers))
	sections = append(sections, checkpoint.Section{ID: secFleetMeta, Body: meta.Data()})

	var wv, wc, wb checkpoint.Writer
	st := f.state
	st.mu.Lock()
	st.virgin.Snapshot(&wv)
	st.corp.Snapshot(&wc)
	st.crashes.Snapshot(&wb)
	st.mu.Unlock()
	sections = append(sections,
		checkpoint.Section{ID: secSharedVirgin, Body: wv.Data()},
		checkpoint.Section{ID: secSharedCorpus, Body: wc.Data()},
		checkpoint.Section{ID: secSharedCrash, Body: wb.Data()},
	)

	for _, w := range f.workers {
		var ww checkpoint.Writer
		w.snapshot(&ww)
		sections = append(sections, checkpoint.Section{ID: secWorker, Body: ww.Data()})
	}
	return checkpoint.Seal(digest, sections)
}

// RestoreCheckpoint overwrites the fleet's campaign state with a
// Checkpoint-produced envelope. digest must match the one the checkpoint
// was sealed with (the campaign's model digest — a checkpoint taken under
// different data models is refused), and the worker count must match the
// fleet's. Must not be called while a Drive is in flight; on error the
// fleet may be partially overwritten and must be discarded.
//
// Peer-cursor healing: cursor slots of the shared corpus beyond the
// fleet's own workers belonged to network peers of the previous
// incarnation. They are dropped so dead cursors never pin journal
// compaction; when those peers reconnect they re-register, and their
// out-of-range resume marks land in the existing full-replay sync
// fallback — which is how a whole hub or mesh fleet heals around a
// restored node.
func (f *Fleet) RestoreCheckpoint(data []byte, digest uint64) error {
	d, sections, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	if d != digest {
		return fmt.Errorf("core: checkpoint model digest %#x does not match campaign %#x", d, digest)
	}
	want := 4 + len(f.workers)
	if len(sections) != want {
		return fmt.Errorf("core: checkpoint has %d sections, fleet of %d workers needs %d", len(sections), len(f.workers), want)
	}
	for i, id := range []uint64{secFleetMeta, secSharedVirgin, secSharedCorpus, secSharedCrash} {
		if sections[i].ID != id {
			return fmt.Errorf("core: checkpoint section %d has id %d, want %d", i, sections[i].ID, id)
		}
	}
	for i := 4; i < len(sections); i++ {
		if sections[i].ID != secWorker {
			return fmt.Errorf("core: checkpoint section %d has id %d, want worker section %d", i, sections[i].ID, secWorker)
		}
	}

	meta := checkpoint.NewReader(sections[0].Body)
	if n := meta.Int(); meta.Err() == nil && n != len(f.workers) {
		return fmt.Errorf("core: checkpoint holds %d workers, fleet has %d", n, len(f.workers))
	}
	type peerMeta struct{ pushed, pulled, crashesSeen int }
	pm := make([]peerMeta, len(f.peers))
	for i := range pm {
		pm[i] = peerMeta{pushed: meta.Int(), pulled: meta.Int(), crashesSeen: meta.Int()}
	}
	if err := meta.Finish(); err != nil {
		return err
	}

	st := f.state
	st.mu.Lock()
	err = func() error {
		r := checkpoint.NewReader(sections[1].Body)
		if err := st.virgin.Restore(r); err != nil {
			return err
		}
		if err := r.Finish(); err != nil {
			return err
		}
		r = checkpoint.NewReader(sections[2].Body)
		if err := st.corp.Restore(r); err != nil {
			return err
		}
		if err := r.Finish(); err != nil {
			return err
		}
		// Drop cursor slots of the previous incarnation's network peers;
		// the fleet's own workers keep slots 0..workers-1 (registration
		// order in NewFleet is worker order, so restored cursors land on
		// the same slots).
		for id := len(f.workers); id < st.corp.Peers(); id++ {
			st.corp.DropPeer(id)
		}
		r = checkpoint.NewReader(sections[3].Body)
		if err := st.crashes.Restore(r); err != nil {
			return err
		}
		return r.Finish()
	}()
	st.mu.Unlock()
	if err != nil {
		return err
	}

	for i, w := range f.workers {
		r := checkpoint.NewReader(sections[4+i].Body)
		if err := w.restore(r); err != nil {
			return fmt.Errorf("core: worker %d: %w", i, err)
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("core: worker %d: %w", i, err)
		}
		// The fleet is the lone registered consumer of a worker's journal;
		// any further restored slots are stale.
		for id := 1; id < w.corp.Peers(); id++ {
			w.corp.DropPeer(id)
		}
		p := f.peers[i]
		p.pushed, p.pulled, p.crashesSeen = pm[i].pushed, pm[i].pulled, pm[i].crashesSeen
		if w.sched.on {
			atomic.StoreInt32(&f.adaptive, 1)
		}
	}
	// Settle the published counters so StatsApprox and ExecsApprox are
	// exact immediately after the restore.
	f.PublishStats()
	return nil
}

// snapshot writes one worker engine's full state. The engine must be
// quiescent: between Steps the pending batch is empty and every scratch
// structure is dead, so only durable state is written.
func (e *Engine) snapshot(w *checkpoint.Writer) {
	st := e.r.State()
	w.U64(st[0])
	w.U64(st[1])
	w.U64(st[2])
	w.U64(st[3])
	w.Int(e.stats.Iterations)
	w.Int(e.stats.Execs)
	w.Int(e.stats.Paths)
	w.Int(e.stats.SemanticExecs)
	w.Int(e.stats.SemanticPaths)
	w.Int(e.stats.Sequences)
	w.Int(e.execRestarts())
	w.Int(e.semExecs)
	w.Int(e.semPaths)
	w.Int(e.baseExecs)
	w.Int(e.basePaths)
	e.virgin.v.Snapshot(w)
	e.corp.Snapshot(w)
	e.crashes.Snapshot(w)

	w.Int(len(e.mut.queue))
	for _, s := range e.mut.queue {
		w.Blob(s)
	}
	w.Int(e.mut.dryRun)

	// Retained valuable instances, in sorted model-name order: each entry
	// is stored as its rendered bytes (re-cracked on restore) plus the
	// trace metadata that drives base selection.
	names := make([]string, 0, len(e.valuable))
	for name, q := range e.valuable {
		if len(q) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		q := e.valuable[name]
		w.String(name)
		w.Int(len(q))
		for i := range q {
			w.Blob(q[i].ins.Bytes())
			w.Int(q[i].depth)
			w.Int(len(q[i].edges))
			for _, ed := range q[i].edges {
				w.Int(int(ed))
			}
			w.U64(q[i].score)
		}
	}

	w.Bool(e.sched.on)
	if e.sched.on {
		e.sched.snapshot(w)
	}
	w.Bool(e.sess != nil)
	if e.sess != nil {
		e.sess.snapshot(w)
	}

	// Target layer: long-lived target state (register banks, simulated
	// heap wear) when the backend can capture it. Blob-framed so the
	// worker section stays decodable around an opaque target dump.
	var tw checkpoint.Writer
	captured := false
	if sc, ok := e.exec.(executor.StateCheckpointer); ok {
		captured = sc.SnapshotState(&tw)
	}
	w.Bool(captured)
	if captured {
		w.Blob(tw.Data())
	}
}

// restore overwrites the engine's durable state with a snapshot-produced
// dump and resets every transient: pending batch, dedup filter, sticky
// backend error. A snapshot with scheduler state enables the scheduler if
// the engine was built without it (the checkpointed campaign's semantics
// win); a snapshot carrying session state requires a session-configured
// engine, since the state machine itself is config, not checkpoint.
func (e *Engine) restore(r *checkpoint.Reader) error {
	var st [4]uint64
	st[0], st[1], st[2], st[3] = r.U64(), r.U64(), r.U64(), r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if err := e.r.SetState(st); err != nil {
		return err
	}
	e.stats.Iterations = r.Int()
	e.stats.Execs = r.Int()
	e.stats.Paths = r.Int()
	e.stats.SemanticExecs = r.Int()
	e.stats.SemanticPaths = r.Int()
	e.stats.Sequences = r.Int()
	restarts := r.Int()
	e.semExecs = r.Int()
	e.semPaths = r.Int()
	e.baseExecs = r.Int()
	e.basePaths = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	// Future execRestarts() must read the stored total plus whatever the
	// live backend restarts from here on, so the accumulator absorbs the
	// stored count net of the live backend's current figure.
	e.restartsAccum = restarts - (e.execRestarts() - e.restartsAccum)

	if err := e.virgin.v.Restore(r); err != nil {
		return err
	}
	if err := e.corp.Restore(r); err != nil {
		return err
	}
	if err := e.crashes.Restore(r); err != nil {
		return err
	}

	nq := r.Count()
	e.mut.queue = nil
	for i := 0; i < nq && r.Err() == nil; i++ {
		e.mut.queue = append(e.mut.queue, r.Blob())
	}
	e.mut.dryRun = r.Int()
	if r.Err() == nil && e.mut.dryRun > len(e.mut.queue) {
		return fmt.Errorf("core: mutation dry-run cursor %d beyond queue of %d", e.mut.dryRun, len(e.mut.queue))
	}

	models := make(map[string]int, len(e.cfg.Models))
	for i, m := range e.cfg.Models {
		models[m.Name] = i
	}
	e.valuable = make(map[string][]valuableSeed)
	nn := r.Count()
	for i := 0; i < nn && r.Err() == nil; i++ {
		name := r.String()
		nv := r.Count()
		mi, known := models[name]
		if r.Err() == nil && nv > valuablePerModel+1 {
			return fmt.Errorf("core: %d retained seeds for model %q exceeds bound", nv, name)
		}
		for j := 0; j < nv && r.Err() == nil; j++ {
			data := r.Blob()
			depth := r.Int()
			ne := r.Count()
			var edges []uint16
			for k := 0; k < ne && r.Err() == nil; k++ {
				ed := r.Int()
				if r.Err() == nil && ed >= 1<<16 {
					return fmt.Errorf("core: retained edge %d out of range", ed)
				}
				edges = append(edges, uint16(ed))
			}
			score := r.U64()
			if r.Err() != nil || !known {
				continue
			}
			// Re-crack the rendered instance against its model. The digest
			// pinned the models, so this normally succeeds; an entry that
			// no longer cracks is dropped — a lost mutation base, not an
			// error.
			ins, err := e.cfg.Models[mi].Crack(data)
			if err != nil {
				continue
			}
			e.valuable[name] = append(e.valuable[name], valuableSeed{ins: ins, depth: depth, edges: edges, score: score})
		}
	}

	if r.Bool() {
		if !e.sched.on {
			e.enableAdaptive()
		}
		if err := e.sched.restore(r, len(e.cfg.Models), len(e.muts)); err != nil {
			return err
		}
	}
	if r.Bool() {
		if e.sess == nil {
			return fmt.Errorf("core: checkpoint carries session state but campaign has no state model")
		}
		if err := e.sess.restore(r); err != nil {
			return err
		}
	}
	if r.Bool() {
		body := r.Blob()
		if r.Err() != nil {
			return r.Err()
		}
		sc, ok := e.exec.(executor.StateCheckpointer)
		if !ok {
			return fmt.Errorf("core: checkpoint carries target state but the backend cannot restore it")
		}
		tr := checkpoint.NewReader(body)
		if err := sc.RestoreState(tr); err != nil {
			return err
		}
		if err := tr.Finish(); err != nil {
			return err
		}
	}
	if r.Err() != nil {
		return r.Err()
	}

	e.pending = e.pending[:0]
	e.pendingSemantic = false
	e.dedup = make(map[string]bool)
	e.execErr = nil
	return nil
}

// snapshot writes the adaptive scheduler's state: the per-(model,mutator)
// trial/hit grids (live decayed and lifetime), the weight rows (nil during
// a model's warmup), the rarity sidecar, the cadence countdowns, and the
// distillation tracker. The round-in-flight fields (curModel, roundMuts)
// are dead between steps and are not written.
func (s *scheduler) snapshot(w *checkpoint.Writer) {
	nm, nmut := len(s.trials), len(s.yields)
	w.Int(nm)
	w.Int(nmut)
	for mi := 0; mi < nm; mi++ {
		for i := 0; i < nmut; i++ {
			w.Uvarint(uint64(s.trials[mi][i]))
			w.Uvarint(uint64(s.hits[mi][i]))
			w.Uvarint(s.trialsAll[mi][i])
			w.Uvarint(s.hitsAll[mi][i])
		}
		w.Uvarint(uint64(s.recalcIn[mi]))
		w.Uvarint(s.totalTrials[mi])
		w.Bool(s.weights[mi] != nil)
		if s.weights[mi] != nil {
			for i := 0; i < nmut; i++ {
				w.Uvarint(uint64(s.weights[mi][i]))
			}
		}
	}
	s.hitCounts.Snapshot(w)
	w.Int(s.scoreIn)
	w.Int(s.distillIn)
	w.Int(s.distills)
	w.Int(len(s.contribs))
	for _, c := range s.contribs {
		w.Int(len(c.edges))
		for _, e := range c.edges {
			w.Int(int(e))
		}
		w.Int(len(c.puzzles))
		for _, p := range c.puzzles {
			w.String(p.sig)
			w.Blob(p.data)
		}
	}
	w.Int(len(s.pending))
	for _, d := range s.pending {
		w.Int(d.Exec)
		w.Int(d.SeedsKept)
		w.Int(d.SeedsDropped)
		w.Int(d.PuzzlesDropped)
		w.Int(d.Edges)
	}
}

// restore overwrites the scheduler's state (the tables must already be
// sized by enableAdaptive). The stored dimensions must match the engine's
// model and mutator counts.
func (s *scheduler) restore(r *checkpoint.Reader, nm, nmut int) error {
	gotNM, gotNMut := r.Int(), r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if gotNM != nm || gotNMut != nmut {
		return fmt.Errorf("core: scheduler tables are %dx%d, campaign is %dx%d", gotNM, gotNMut, nm, nmut)
	}
	for mi := 0; mi < nm && r.Err() == nil; mi++ {
		for i := 0; i < nmut; i++ {
			s.trials[mi][i] = uint32(r.Uvarint())
			s.hits[mi][i] = uint32(r.Uvarint())
			s.trialsAll[mi][i] = r.Uvarint()
			s.hitsAll[mi][i] = r.Uvarint()
		}
		s.recalcIn[mi] = uint32(r.Uvarint())
		s.totalTrials[mi] = r.Uvarint()
		if r.Bool() {
			row := make([]uint32, nmut)
			for i := 0; i < nmut; i++ {
				row[i] = uint32(r.Uvarint())
			}
			s.weights[mi] = row
		} else {
			s.weights[mi] = nil
		}
	}
	s.curModel = -1
	s.roundMuts = s.roundMuts[:0]
	if err := s.hitCounts.Restore(r); err != nil {
		return err
	}
	s.scoreIn = r.Int()
	s.distillIn = r.Int()
	s.distills = r.Int()
	nc := r.Count()
	s.contribs = nil
	for i := 0; i < nc && r.Err() == nil; i++ {
		var c contributor
		ne := r.Count()
		for j := 0; j < ne && r.Err() == nil; j++ {
			e := r.Int()
			if r.Err() == nil && e >= 1<<16 {
				return fmt.Errorf("core: contributor edge %d out of range", e)
			}
			c.edges = append(c.edges, uint16(e))
		}
		np := r.Count()
		for j := 0; j < np && r.Err() == nil; j++ {
			c.puzzles = append(c.puzzles, puzzleRef{sig: r.String(), data: r.Blob()})
		}
		if r.Err() == nil {
			s.contribs = append(s.contribs, c)
		}
	}
	nd := r.Count()
	s.pending = nil
	for i := 0; i < nd && r.Err() == nil; i++ {
		s.pending = append(s.pending, DistillInfo{
			Exec:           r.Int(),
			SeedsKept:      r.Int(),
			SeedsDropped:   r.Int(),
			PuzzlesDropped: r.Int(),
			Edges:          r.Int(),
		})
	}
	return r.Err()
}

// snapshot writes the session-fuzzing state: per-state accounting, the
// first-reach event queue, the retained valuable sequences (through the
// canonical sequence codec), and the sequence-operator tables. Per-step
// scratch (cur, stepModel, stepMuts) is dead between iterations and is not
// written.
func (s *sessionCore) snapshot(w *checkpoint.Writer) {
	w.Int(len(s.stateSent))
	for i := range s.stateSent {
		w.Uvarint(s.stateSent[i])
		w.Int(s.stateEdges[i])
		w.Bool(s.reached[i])
	}
	w.Int(len(s.pendingStates))
	for _, ps := range s.pendingStates {
		w.String(ps.State)
		w.Int(ps.Exec)
	}
	w.Int(len(s.seqs))
	for _, rs := range s.seqs {
		w.Blob(session.Encode(nil, rs.seq))
		w.Int(rs.endState)
	}
	w.Int(seqOpChoices)
	for i := 0; i < seqOpChoices; i++ {
		w.Uvarint(s.opTrials[i])
		w.Uvarint(s.opHits[i])
	}
}

// restore overwrites the session state. The stored state count must match
// the configured state machine's, and every retained sequence must decode
// through the canonical sequence codec.
func (s *sessionCore) restore(r *checkpoint.Reader) error {
	ns := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if ns != len(s.sm.States) {
		return fmt.Errorf("core: checkpoint has %d session states, model %q has %d", ns, s.sm.Name, len(s.sm.States))
	}
	s.reachedN = 0
	for i := 0; i < ns && r.Err() == nil; i++ {
		s.stateSent[i] = r.Uvarint()
		s.stateEdges[i] = r.Int()
		s.reached[i] = r.Bool()
		if s.reached[i] {
			s.reachedN++
		}
	}
	np := r.Count()
	s.pendingStates = nil
	for i := 0; i < np && r.Err() == nil; i++ {
		s.pendingStates = append(s.pendingStates, StateInfo{State: r.String(), Exec: r.Int()})
	}
	nq := r.Count()
	s.seqs = nil
	for i := 0; i < nq && r.Err() == nil; i++ {
		enc := r.Blob()
		end := r.Int()
		if r.Err() != nil {
			break
		}
		seq, err := session.Decode(enc)
		if err != nil {
			return fmt.Errorf("core: retained sequence %d: %w", i, err)
		}
		if end < 0 || end >= len(s.sm.States) {
			return fmt.Errorf("core: retained sequence %d ends in state %d of %d", i, end, len(s.sm.States))
		}
		s.seqs = append(s.seqs, retainedSeq{seq: seq, endState: end})
	}
	if n := r.Int(); r.Err() == nil && n != seqOpChoices {
		return fmt.Errorf("core: checkpoint has %d sequence operators, engine has %d", n, seqOpChoices)
	}
	for i := 0; i < seqOpChoices && r.Err() == nil; i++ {
		s.opTrials[i] = r.Uvarint()
		s.opHits[i] = r.Uvarint()
	}
	s.opRound = -1
	s.prevEdges = 0
	s.cur.Steps = s.cur.Steps[:0]
	return r.Err()
}
