package core

import (
	"repro/internal/corpus"
	"repro/internal/datamodel"
	"repro/internal/rng"
)

// valuablePerModel bounds the retained coverage-increasing instances per
// model.
const valuablePerModel = 32

// valuableSeed is one retained coverage-increasing instance together with
// the depth (edge count) of the trace that made it valuable. Depth guides
// base selection: a packet that was valuable for tripping an early
// validation branch is a poor mutation base compared to one that ran deep
// into the service logic.
//
// Under the adaptive scheduler the seed also carries the edge list of its
// trace and a cached rarity score over it (refreshed periodically from the
// campaign's hit counters); both stay nil/0 otherwise.
type valuableSeed struct {
	ins   *datamodel.Node
	depth int
	edges []uint16
	score uint64
}

// crackValuable implements Algorithm 2: try to crack the valuable seed with
// every data model; for each model whose parse is legal, DFS the
// instantiation tree and add every sub-tree puzzle to the corpus. The
// instance is also retained per model as a feedback-selected base for
// "mutation on existing chunks".
func (e *Engine) crackValuable(seed []byte, depth int) {
	// Under the adaptive scheduler, capture the trace's edge list once —
	// shared by every model's retained entry and by the distillation
	// tracker — and record which corpus puzzles this seed's cracks added.
	var edges []uint16
	var refs []puzzleRef
	if e.sched.on {
		edges = e.exec.Tracer().AppendEdges(make([]uint16, 0, depth))
	}
	for _, m := range e.cfg.Models { // line 4: for M in S_M
		ins, err := m.Crack(seed) // line 5: PARSE
		if err != nil {
			continue // line 6: LEGAL failed
		}
		q := append(e.valuable[m.Name], valuableSeed{ins: ins, depth: depth, edges: edges})
		if len(q) > valuablePerModel {
			q = q[1:]
		}
		e.valuable[m.Name] = q
		if e.sched.on {
			_, refs = collectPuzzlesTracked(e.corp, m.Name, ins, refs)
		} else {
			collectPuzzles(e.corp, m.Name, ins) // lines 8-18: DFS
		}
	}
	if e.sched.on {
		e.sched.trackContributor(edges, refs)
	}
}

// pickValuable selects a retained instance. Default: a tournament
// preferring deeper traces — three uniform draws, keep the deepest. Under
// the adaptive scheduler: one draw weighted by cached edge rarity, so
// seeds touching rarely-reached program states become the preferred bases
// (falling back to the tournament until the first rarity refresh).
func (e *Engine) pickValuable(q []valuableSeed) *datamodel.Node {
	if e.sched.on {
		if ins := e.pickValuableRare(q); ins != nil {
			return ins
		}
	}
	best := rng.Pick(e.r, q)
	for i := 0; i < 2; i++ {
		if c := rng.Pick(e.r, q); c.depth > best.depth {
			best = c
		}
	}
	return best.ins
}

// collectPuzzles is the DFS procedure of Algorithm 2: the puzzle of a leaf
// is its own content; the puzzle of an interior node is the in-order
// concatenation of its children's puzzles. Every sub-tree contributes one
// puzzle to the corpus.
//
// Leaf puzzles are stored under the leaf's construction-rule signature so
// they can donate to same-rule chunks of other models (Algorithm 3). An
// interior node's puzzle is stored under its structural signature (see
// nodeSignature); such block-level puzzles can donate whole sub-structures.
func collectPuzzles(corp *corpus.Corpus, model string, n *datamodel.Node) []byte {
	if n.IsLeaf() {
		corp.AddNode(model, n)
		return n.Data
	}
	var puzzle []byte
	for _, c := range n.Children {
		puzzle = append(puzzle, collectPuzzles(corp, model, c)...) // JOINT
	}
	corp.Add(corpus.Puzzle{
		Signature: nodeSignature(n),
		Data:      append([]byte(nil), puzzle...),
		Model:     model,
	})
	return puzzle
}

// nodeSignature computes the structural construction-rule signature of an
// instance sub-tree: leaves contribute their chunk's rule signature,
// interior nodes the ordered composition of their children's. Two sub-trees
// with equal signatures instantiate interchangeable rule sequences — the
// whole-block analogue of §III's chunk similarity.
func nodeSignature(n *datamodel.Node) string {
	if n.IsLeaf() {
		return datamodel.RuleSignature(n.Chunk)
	}
	sig := "blk("
	for i, c := range n.Children {
		if i > 0 {
			sig += ","
		}
		sig += nodeSignature(c)
	}
	return sig + ")"
}
