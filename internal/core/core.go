// Package core implements the Peach* fuzzing engine (paper §IV): the
// generation-based fuzzing loop of Algorithm 1, the coverage feedback that
// identifies valuable seeds (§IV-B), the file cracker that splits valuable
// seeds into puzzles (Algorithm 2), and the semantic-aware generation
// strategy with file fixup that reassembles puzzles into new packets
// (Algorithm 3, §IV-D).
//
// The same Engine runs both the baseline (plain Peach, Algorithm 1) and the
// full Peach* strategy, selected by Config.Strategy, which is what the
// paper's evaluation compares.
package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/crash"
	"repro/internal/datamodel"
	"repro/internal/executor"
	"repro/internal/mutator"
	"repro/internal/rng"
	"repro/internal/sandbox"
	"repro/internal/session"
)

// Strategy selects the generation strategy.
type Strategy int

// Strategies compared in the paper's evaluation.
const (
	// StrategyPeach is the baseline: Algorithm 1 with Peach's inherent
	// mutator-driven generation and no feedback loop.
	StrategyPeach Strategy = iota
	// StrategyPeachStar augments the baseline with coverage feedback,
	// packet cracking, and semantic-aware generation (the paper's
	// contribution).
	StrategyPeachStar
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case StrategyPeach:
		return "Peach"
	case StrategyPeachStar:
		return "Peach*"
	case StrategyMutation:
		return "MutFuzz"
	case StrategyMutationStar:
		return "MutFuzz*"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Models is the data-model set extracted from the format
	// specification (EXTRACTDATAMODEL of Algorithms 1 and 2).
	Models []*datamodel.Model
	// Target is the instrumented protocol program under test.
	Target sandbox.Target
	// Executor, when non-nil, overrides the execution backend: the engine
	// runs every generated seed through it instead of building an
	// in-process sandbox over Target. The engine borrows the executor (the
	// caller that built it closes it) and reads coverage from its Tracer.
	// When nil — the default every existing campaign uses — the engine
	// wraps Target in the in-process backend, which is bit-for-bit
	// identical to the pre-interface sandbox path.
	Executor executor.Executor
	// Strategy selects Peach or Peach*.
	Strategy Strategy
	// Seed drives all randomness; equal seeds give equal campaigns.
	Seed uint64

	// Session, when non-nil, switches the engine into stateful-session
	// fuzzing (see session.go): every iteration walks the state machine
	// and drives a message sequence down one target session instead of
	// sending one packet. Every Action.Model must name a model in Models.
	// When nil — the default — no session code runs and the engine is
	// bit-for-bit identical to the single-packet build.
	Session *session.StateModel

	// MaxBatch caps the number of seeds Algorithm 3 materializes per
	// iteration from the donor cartesian product (the paper enumerates
	// p*q combinations; unbounded enumeration explodes). 0 = default.
	MaxBatch int
	// CorpusPerSig bounds stored puzzles per rule signature. 0 = default.
	CorpusPerSig int

	// Adaptive enables the adaptive scheduler (see sched.go): learned
	// per-model mutator weights, rarity-weighted seed selection, and
	// periodic corpus distillation. Off by default; when off the engine
	// is bit-for-bit identical to a build without the scheduler.
	Adaptive bool

	// Ablation switches (all false in the faithful configuration).
	//
	// DisableFixup skips the File Fixup pass on semantically generated
	// seeds, so donated chunks leave sizes/checksums stale (§IV-D argues
	// this loses validity).
	DisableFixup bool
	// DisableCracker never cracks valuable seeds, leaving the corpus
	// empty; Peach* then degenerates to the baseline plus feedback
	// bookkeeping.
	DisableCracker bool
	// DisableCrossModel restricts donors to puzzles cracked from the
	// same data model, suppressing the cross-opcode donation of §IV-D.
	DisableCrossModel bool
}

// DefaultMaxBatch is the default cap on seeds materialized per semantic
// generation round.
const DefaultMaxBatch = 64

// Stats is a snapshot of campaign progress.
type Stats struct {
	// Iterations of the outer fuzzing loop.
	Iterations int
	// Execs is the number of target executions (Peach* may execute
	// several generated seeds per iteration).
	Execs int
	// Paths is the number of valuable seeds retained — the "paths
	// covered" metric of Fig. 4.
	Paths int
	// SemanticExecs and SemanticPaths break out the share of executions
	// and valuable seeds contributed by semantic-aware generation
	// (always 0 for the baseline).
	SemanticExecs int
	SemanticPaths int
	// Edges is the number of distinct coverage-map edges seen.
	Edges int
	// UniqueCrashes and Hangs summarize the crash bank.
	UniqueCrashes int
	Hangs         int
	// CorpusPuzzles is the current puzzle count (0 for baseline).
	CorpusPuzzles int
	// TargetRestarts is how many times the execution backend respawned a
	// supervised target process (crash recoveries, watchdog kills,
	// preventive journal restarts); always 0 for in-process campaigns.
	TargetRestarts int
	// Distills is the number of corpus distillations run; 0 unless the
	// adaptive scheduler is on.
	Distills int
	// MutatorStats is the adaptive scheduler's per-operator accounting,
	// in mutator-suite order; nil unless the adaptive scheduler is on.
	MutatorStats []MutatorStat
	// Sequences is the number of message sequences driven; 0 unless
	// session fuzzing is on (Config.Session).
	Sequences int
	// StatesReached is how many state-machine states the campaign has
	// sent a message from; 0 unless session fuzzing is on.
	StatesReached int
	// StateCoverage is the per-state session accounting, in StateModel
	// order; nil unless session fuzzing is on.
	StateCoverage []StateCoverage
	// SeqOpStats is the sequence-operator accounting (trials and valuable
	// hits per operator); nil unless session fuzzing is on.
	SeqOpStats []MutatorStat
}

// Engine is one fuzzing campaign.
type Engine struct {
	cfg  Config //peachstar:nosnap construction-time config; a restored campaign keeps its own
	r    *rng.RNG
	exec executor.Executor
	//peachstar:nosnap backend health is runtime state, not campaign state; restore clears it
	execErr error // first unrecoverable backend failure; sticky
	// restartsAccum carries the target-restart counts of previous
	// executors across SwapExecutor boundaries, so a campaign's
	// TargetRestarts survives the session restoring the in-process
	// backend.
	restartsAccum int
	virgin        *virginState
	corp          *corpus.Corpus
	crashes       *crash.Bank
	muts          []mutator.Mutator //peachstar:nosnap mutator suite is construction wiring
	stats         Stats
	// pending holds seeds generated but not yet executed (Algorithm 3
	// produces batches); pendingSemantic records their provenance.
	pending         [][]byte //peachstar:nosnap in-flight batch is discarded at a checkpoint; restore resets it
	pendingSemantic bool     //peachstar:nosnap provenance of the discarded in-flight batch
	// Hot-path scratch state, reset once per generation round: the arena
	// backs every transient instance tree and rendered seed; leaves,
	// cands and saved are reused slices for the per-iteration walks;
	// dedup is the per-batch duplicate filter. Everything that outlives
	// an iteration (corpus, crash bank, valuable queue) copies out.
	arena  datamodel.Arena   //peachstar:nosnap per-round scratch slab, reset at round start
	leaves []*datamodel.Node //peachstar:nosnap per-iteration walk scratch
	cands  [][]corpus.Puzzle //peachstar:nosnap per-iteration walk scratch
	saved  [][]byte          //peachstar:nosnap per-iteration walk scratch
	dedup  map[string]bool   //peachstar:nosnap per-batch filter; restore resets it
	// valuable holds the retained coverage-increasing instances per
	// model — the feedback-selected bases for "mutation on existing
	// chunks" (§II). Bounded per model; older entries are evicted.
	valuable map[string][]valuableSeed
	// Yield accounting for the adaptive semantic share: execs and
	// valuable seeds per strategy arm.
	semExecs, semPaths   int
	baseExecs, basePaths int
	// donorScr holds per-position donor scratch for semantic generation,
	// reused across rounds so CrossModelDonorsInto filtering stays
	// alloc-free on the hot path.
	donorScr [][]corpus.Puzzle //peachstar:nosnap reusable donor scratch, regrown on demand
	// mut is the byte-level state of the mutation strategies (§VII
	// future-work extension).
	mut mutationState
	// sched is the adaptive scheduler state (zero value = disabled).
	sched scheduler
	// sess is the stateful-session fuzzing state (nil = single-packet).
	sess *sessionCore
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("core: no data models")
	}
	if cfg.Target == nil && cfg.Executor == nil {
		return nil, fmt.Errorf("core: no target")
	}
	for _, m := range cfg.Models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	ex := cfg.Executor
	if ex == nil {
		ex = executor.NewInProc(cfg.Target)
	}
	e := &Engine{
		cfg:      cfg,
		r:        rng.New(cfg.Seed),
		exec:     ex,
		virgin:   newVirginState(),
		corp:     corpus.New(cfg.CorpusPerSig),
		crashes:  crash.NewBank(),
		muts:     mutator.Suite(),
		valuable: make(map[string][]valuableSeed),
		dedup:    make(map[string]bool),
	}
	if cfg.Adaptive {
		e.enableAdaptive()
	}
	if cfg.Session != nil {
		sc, err := newSessionCore(cfg.Session, cfg.Models)
		if err != nil {
			return nil, err
		}
		e.sess = sc
	}
	return e, nil
}

// Stats returns the current campaign snapshot.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Edges = e.virgin.Edges()
	s.UniqueCrashes = e.crashes.Unique()
	s.Hangs = e.crashes.Hangs()
	s.CorpusPuzzles = e.corp.Len()
	if e.sched.on {
		s.Distills = e.sched.distills
		s.MutatorStats = e.mutatorStats()
	}
	if e.sess != nil {
		s.StatesReached = e.sess.reachedN
		s.StateCoverage = e.sess.stateCoverage()
		s.SeqOpStats = e.sess.seqOpStats()
	}
	s.TargetRestarts = e.execRestarts()
	return s
}

// execRestarts is the campaign-lifetime target-restart count: restarts
// accumulated from swapped-out backends plus the live backend's own.
func (e *Engine) execRestarts() int {
	n := e.restartsAccum
	if rp, ok := e.exec.(interface{ Restarts() int }); ok {
		n += rp.Restarts()
	}
	return n
}

// Crashes exposes the crash bank for reporting.
func (e *Engine) Crashes() *crash.Bank { return e.crashes }

// Executor exposes the engine's execution backend.
func (e *Engine) Executor() executor.Executor { return e.exec }

// SwapExecutor replaces the engine's execution backend, returning the
// previous one. The caller owns both lifecycles; swapping mid-campaign is
// the session layer's mechanism for attaching a real-target backend to an
// engine built with the default in-process one. A sticky backend error is
// cleared: it described the outgoing backend, and the campaign must be
// able to continue on the new one.
func (e *Engine) SwapExecutor(x executor.Executor) executor.Executor {
	prev := e.exec
	if rp, ok := prev.(interface{ Restarts() int }); ok {
		e.restartsAccum += rp.Restarts()
	}
	e.exec = x
	e.execErr = nil
	return prev
}

// ExecError returns the first unrecoverable execution-backend failure, or
// nil. Once set, further Steps stop executing: the backend is gone (spawn
// retries exhausted, target binary missing) and the campaign cannot make
// progress.
func (e *Engine) ExecError() error { return e.execErr }

// Corpus exposes the puzzle corpus for reporting and examples.
func (e *Engine) Corpus() *corpus.Corpus { return e.corp }

// Step runs one iteration of the outer loop (Algorithm 1 lines 3-12):
// generate seed(s) under the configured strategy, execute them, process
// feedback. It returns the number of executions performed.
//
//peachstar:hotpath
func (e *Engine) Step() int {
	if e.sess != nil {
		return e.stepSession()
	}
	e.stats.Iterations++
	if len(e.pending) == 0 {
		e.generate()
	}
	execs := 0
	// Execute the whole pending batch this step; each seed is one
	// RUNTARGET of Algorithm 1.
	for _, seed := range e.pending {
		e.execute(seed)
		execs++
	}
	e.pending = e.pending[:0]
	return execs
}

// Run executes steps until at least execBudget target executions have been
// performed, or the execution backend fails unrecoverably (ExecError).
func (e *Engine) Run(execBudget int) {
	for e.stats.Execs < execBudget && e.execErr == nil {
		e.Step()
	}
}

// generate refills the pending batch under the configured strategy.
//
// Peach* applies the semantic-aware strategy "in the following iteration of
// seed generation" once the corpus is available (§IV-A), but the inherent
// strategy keeps running too — without it, exploration would stop producing
// the novel chunk material the corpus feeds on. The share of iterations
// given to semantic generation adapts to its measured yield (valuable
// seeds per execution) relative to the inherent strategy, so recombination
// gets budget exactly where cross-model donation is paying off.
func (e *Engine) generate() {
	// The previous batch is fully executed and everything retained from it
	// has been copied out, so the arena's trees and seed buffers are dead:
	// recycle them for this round.
	e.arena.Reset()
	if e.isMutationStrategy() {
		if e.sched.on {
			e.sched.beginRound(-1) // byte-level rounds carry no operator credit
		}
		e.pendingSemantic = false
		e.pending = append(e.pending, e.mutationGenerate())
		return
	}
	// CHOOSE(S_M) — by index so the scheduler can attribute the round;
	// consumes the identical RNG draw rng.Pick would (one Intn).
	mi := e.r.Intn(len(e.cfg.Models))
	m := e.cfg.Models[mi]
	if e.sched.on {
		e.sched.beginRound(mi)
	}
	e.pendingSemantic = false
	if e.cfg.Strategy == StrategyPeachStar && !e.corp.Empty() && e.semanticTurn() {
		e.semanticGenerate(m) // fills e.pending
		if len(e.pending) > 0 {
			e.pendingSemantic = true
			return
		}
	}
	// Baseline generation (Algorithm 1): one seed from the model's
	// chunks via the inherent mutators.
	e.pending = append(e.pending, e.baselineGenerate(m))
}

// semanticTurn decides whether this iteration uses semantic generation, by
// steering the semantic arm's share of *executions* (batches are several
// seeds, so iteration-level coin flips would overshoot). The target share
// is the smoothed relative yield (valuable seeds per execution) of the two
// arms, clamped to [3%, 50%]: recombination is never starved — its donor
// corpus keeps improving — and batch replay never crowds out exploration.
func (e *Engine) semanticTurn() bool {
	// The baseline arm carries an optimism bonus; the semantic arm does
	// not: with no recent semantic yield the share must fall to the
	// floor rather than drift back to the smoothing prior.
	semYield := float64(e.semPaths) / (float64(e.semExecs) + 256)
	baseYield := (float64(e.basePaths) + 1) / (float64(e.baseExecs) + 256)
	share := semYield / (semYield + baseYield)
	if share < 0.03 {
		share = 0.03
	}
	if share > 0.5 {
		share = 0.5
	}
	total := float64(e.semExecs+e.baseExecs) + 1
	return float64(e.semExecs) < share*total
}

// execute runs one seed and processes coverage and crash feedback.
func (e *Engine) execute(seed []byte) {
	if e.execErr != nil {
		return
	}
	e.stats.Execs++
	if e.pendingSemantic {
		e.semExecs++
		e.stats.SemanticExecs++
	} else {
		e.baseExecs++
	}
	// Decay the yield window periodically so the semantic share tracks
	// *marginal* productivity, not the campaign-long average — late in a
	// campaign both arms' historical yields converge even when one has
	// stopped paying.
	if (e.semExecs+e.baseExecs)%1024 == 0 {
		e.semExecs = e.semExecs * 3 / 4
		e.semPaths = e.semPaths * 3 / 4
		e.baseExecs = e.baseExecs * 3 / 4
		e.basePaths = e.basePaths * 3 / 4
	}
	res, err := e.exec.Run(seed)
	if err != nil {
		// Unrecoverable backend failure. The exec was already counted, so
		// budget-driven loops still terminate; the sticky error makes the
		// drivers stop early and surfaces in the campaign result.
		if e.execErr == nil {
			e.execErr = err
		}
		return
	}
	switch res.Outcome {
	case sandbox.Crash:
		e.crashes.ReportSequenceSteps(res.Fault, seed, res.Repro, res.ReproStarts, e.stats.Execs, res.PathSig)
	case sandbox.Hang:
		e.crashes.ReportHangDetail(res.HangSteps, seed)
	}
	// Valuable-seed identification (§IV-B): did this execution reach a
	// new program state? The merge walks only the tracer lines this
	// execution dirtied. This decision is also the scheduler's credit
	// assignment point: MergeTracer returning true is exactly "new edge
	// or new hit bucket", the hit signal for the round's operators.
	valuable := e.virgin.MergeTracer(e.exec.Tracer())
	if e.sched.on {
		e.observeExec(valuable)
	}
	if valuable {
		e.stats.Paths++
		if e.pendingSemantic {
			e.semPaths++
			e.stats.SemanticPaths++
		} else {
			e.basePaths++
		}
		if e.isMutationStrategy() {
			e.mutationRetain(seed)
		}
		star := e.cfg.Strategy == StrategyPeachStar || e.cfg.Strategy == StrategyMutationStar
		if star && !e.cfg.DisableCracker {
			e.crackValuable(seed, e.exec.Tracer().CountEdges())
		}
	}
}
