package core

import (
	"repro/internal/datamodel"
	"repro/internal/rng"
)

// This file implements the paper's second future-work direction (§VII):
// "customize our work into other generation- or mutation-based fuzzers".
//
// StrategyMutation is an AFL-style byte-level fuzzer over the same targets:
// a seed queue retained by coverage feedback, havoc-stage mutations, no
// knowledge of packet structure beyond the initial seeds (the data models'
// default instances, standing in for a user-supplied seed directory).
//
// StrategyMutationStar adds the paper's mechanism on top: valuable seeds
// are cracked against the data models (Algorithm 2), and a fraction of
// mutations are chunk-aware — a donor puzzle replaces one chunk of the
// cracked seed and File Fixup repairs the integrity fields — instead of
// blind byte havoc. This is the Polar-adjacent configuration the paper
// positions itself against (§VI), built from the same components.

// Mutation-based strategies (extensions beyond the paper's evaluation).
const (
	// StrategyMutation is the byte-level baseline (AFL-style havoc).
	StrategyMutation Strategy = iota + 16
	// StrategyMutationStar augments byte havoc with coverage-guided
	// packet crack and chunk-aware donation.
	StrategyMutationStar
)

// mutationQueueBound caps the byte-level seed queue.
const mutationQueueBound = 256

// mutationState is the extra engine state the mutation strategies use.
type mutationState struct {
	queue [][]byte
	// dryRun indexes the initial unmutated replay of the seed queue.
	dryRun int
}

// initMutationQueue seeds the queue with the models' default instances —
// the "user-provided initial seeds" of §II.
func (e *Engine) initMutationQueue() {
	for _, m := range e.cfg.Models {
		e.mut.queue = append(e.mut.queue, m.Generate().Bytes())
	}
}

// mutationGenerate produces one seed via byte havoc; under
// StrategyMutationStar a fraction of iterations runs the chunk-aware
// donation stage instead. The first calls replay the initial seeds
// unmutated, as AFL's dry run does — that is also what hands the cracker
// its first legal packets.
func (e *Engine) mutationGenerate() []byte {
	if len(e.mut.queue) == 0 {
		e.initMutationQueue()
	}
	if e.mut.dryRun < len(e.mut.queue) {
		seed := e.mut.queue[e.mut.dryRun]
		e.mut.dryRun++
		return append(e.arena.Buffer(len(seed)), seed...)
	}
	base := rng.Pick(e.r, e.mut.queue)
	if e.cfg.Strategy == StrategyMutationStar && !e.corp.Empty() && e.r.Chance(3) {
		if seed, ok := e.chunkAwareMutate(base); ok {
			return seed
		}
	}
	// The havoc scratch comes from the arena with headroom for inserts;
	// growth past the headroom falls back to the heap, which is merely an
	// allocation, not a bug.
	return havocInto(e.r, e.arena.Buffer(len(base)+16), base)
}

// chunkAwareMutate cracks the base seed against the model set; on success
// it donates a corpus puzzle into one donatable leaf and repairs the
// packet. ok is false when no model cracks the seed or no donor fits.
func (e *Engine) chunkAwareMutate(base []byte) ([]byte, bool) {
	for _, m := range e.cfg.Models {
		ins, err := m.Crack(base)
		if err != nil {
			continue
		}
		leaves := ins.Leaves(nil)
		rng.Shuffle(e.r, leaves)
		for _, leaf := range leaves {
			donors := e.corp.CrossModelDonors(leaf.Chunk, m.Name)
			if len(donors) == 0 {
				continue
			}
			leaf.Data = rng.Pick(e.r, donors).Data // read-only alias; fixups never write donatable leaves
			m.ApplyFixups(ins)
			return e.render(ins), true
		}
		return nil, false // cracked but nothing donatable
	}
	return nil, false
}

// havoc applies 1..8 random byte-level operations, the AFL havoc stage.
func havoc(r *rng.RNG, base []byte) []byte {
	return havocInto(r, nil, base)
}

// havocInto is havoc writing into a reusable scratch buffer (the engine
// passes arena-backed scratch so the steady-state path stays allocation
// free).
func havocInto(r *rng.RNG, dst, base []byte) []byte {
	out := append(dst[:0], base...)
	for n := r.Range(1, 8); n > 0; n-- {
		if len(out) == 0 {
			out = append(out, r.Byte())
			continue
		}
		switch r.Intn(6) {
		case 0: // bit flip
			i := r.Intn(len(out) * 8)
			out[i/8] ^= 1 << (i % 8)
		case 1: // random byte
			out[r.Intn(len(out))] = r.Byte()
		case 2: // interesting byte
			out[r.Intn(len(out))] = rng.Pick(r, []byte{0x00, 0x01, 0x7F, 0x80, 0xFF, 0x68, 0x16})
		case 3: // delete range
			if len(out) > 2 {
				i := r.Intn(len(out) - 1)
				j := r.Range(i+1, len(out))
				out = append(out[:i], out[j:]...)
			}
		case 4: // duplicate range
			if len(out) > 1 && len(out) < 512 {
				i := r.Intn(len(out) - 1)
				j := r.Range(i+1, len(out))
				seg := append([]byte(nil), out[i:j]...)
				out = append(out[:j], append(seg, out[j:]...)...)
			}
		case 5: // insert random byte
			i := r.Intn(len(out) + 1)
			out = append(out[:i], append([]byte{r.Byte()}, out[i:]...)...)
		}
	}
	return out
}

// mutationRetain adds a valuable seed to the byte-level queue, evicting the
// oldest past the bound.
func (e *Engine) mutationRetain(seed []byte) {
	cp := append([]byte(nil), seed...)
	e.mut.queue = append(e.mut.queue, cp)
	if len(e.mut.queue) > mutationQueueBound {
		e.mut.queue = e.mut.queue[1:]
	}
}

// isMutationStrategy reports whether the engine runs byte-level.
func (e *Engine) isMutationStrategy() bool {
	return e.cfg.Strategy == StrategyMutation || e.cfg.Strategy == StrategyMutationStar
}

var _ = datamodel.Variable // the chunk-aware stage builds on datamodel
