package core

import (
	"sync"

	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
)

// This file defines the shared campaign state and the pluggable merge path
// that both the in-process sharded runner (Fleet) and the network fleet
// transport (internal/fleetnet) speak. The merge protocol itself — virgin
// bitmap union, corpus journal delta exchange, crash-bank dedup — is defined
// once, here; whether the peer on the other side is a worker goroutine or a
// TCP connection is a detail of the SyncPeer implementation.

// SyncState is the shared state of one fuzzing campaign: the union coverage
// accumulator, the union puzzle corpus, and a bank for crash records that
// arrive from outside the local process. Local worker engines and remote
// fleet nodes all merge into (and back out of) the same SyncState through
// Exchange, under one mutex.
type SyncState struct {
	mu      sync.Mutex
	virgin  *coverage.Virgin
	corp    *corpus.Corpus
	crashes *crash.Bank
}

// NewSyncState returns empty shared campaign state. corpusPerSig bounds
// stored puzzles per rule signature (0 = corpus default).
func NewSyncState(corpusPerSig int) *SyncState {
	return &SyncState{
		virgin:  coverage.NewVirgin(),
		corp:    corpus.New(corpusPerSig),
		crashes: crash.NewBank(),
	}
}

// SyncPeer is one party of the batched merge protocol: a local worker
// engine, or a network connection standing in for a remote fleet. Exchange
// is invoked with the shared state's components while the state lock is
// held; the peer pushes its new discoveries in and pulls the state's
// discoveries out in one atomic window. Implementations must not retain the
// arguments past the call.
type SyncPeer interface {
	Exchange(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error
}

// ExchangeFunc adapts a plain function to the SyncPeer interface, for
// one-shot locked operations on the shared state (peer registration,
// cleanup after a dropped connection).
type ExchangeFunc func(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error

// Exchange implements SyncPeer.
func (f ExchangeFunc) Exchange(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
	return f(virgin, corp, crashes)
}

// Exchange runs one batched merge window between the shared state and the
// peer, serialized against all other peers. The error is the peer's own
// (local workers never fail; a network peer reports encode/transport
// problems so the caller can drop the connection).
func (s *SyncState) Exchange(p SyncPeer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.Exchange(s.virgin, s.corp, s.crashes)
}

// empty reports whether nothing has ever been merged into the state — true
// for a fleet that has never synced (the serial single-worker path) and
// false as soon as any local flush or remote exchange lands.
func (s *SyncState) empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.virgin.Edges() == 0 && s.corp.Empty() && s.crashes.Unique() == 0 && s.crashes.Hangs() == 0
}

// Edges returns the number of distinct coverage edges in the shared union
// map — the worker-count- and host-count-independent campaign metric.
func (s *SyncState) Edges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.virgin.Edges()
}

// Figures returns the union edge count and corpus size under one lock
// acquisition — the per-window publication read of the fleet driver.
func (s *SyncState) Figures() (edges, corpusLen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.virgin.Edges(), s.corp.Len()
}

// CorpusLen returns the number of puzzles in the shared corpus.
func (s *SyncState) CorpusLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corp.Len()
}

// CrashRecords snapshots the crash records that have arrived from remote
// peers (local workers keep their own banks; Fleet.Crashes folds both).
func (s *SyncState) CrashRecords() []*crash.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes.Records()
}
