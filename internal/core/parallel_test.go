package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/sandbox"
)

func newFleet(t *testing.T, workers, budgetPerSync int, seed uint64) *Fleet {
	t.Helper()
	f, err := NewFleet(Config{
		Models:   toyModels(),
		Target:   newToyTarget(),
		Strategy: StrategyPeachStar,
		Seed:     seed,
	}, ParallelConfig{
		Workers:    workers,
		NewTarget:  func() sandbox.Target { return newToyTarget() },
		MergeEvery: budgetPerSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestParallelWorkers1MatchesSerial is the bit-for-bit guarantee: a
// single-worker fleet reproduces the serial engine exactly — same stats,
// same crashes, same corpus — because worker 0 keeps the campaign seed and
// the one-worker Run path performs no sync operations.
func TestParallelWorkers1MatchesSerial(t *testing.T) {
	serial := newEngine(t, StrategyPeachStar, 42)
	serial.Run(5000)

	fleet := newFleet(t, 1, 0, 42)
	fleet.Run(5000)

	if got, want := fleet.Stats(), serial.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet(1) stats = %+v, serial stats = %+v", got, want)
	}
	sr, fr := serial.Crashes().Records(), fleet.Crashes().Records()
	if len(sr) != len(fr) {
		t.Fatalf("fleet(1) found %d crashes, serial %d", len(fr), len(sr))
	}
	for i := range sr {
		if sr[i].Site != fr[i].Site || sr[i].FirstExec != fr[i].FirstExec {
			t.Fatalf("crash %d differs: serial %+v, fleet %+v", i, sr[i], fr[i])
		}
	}
	if got, want := fleet.Corpus().Len(), serial.Corpus().Len(); got != want {
		t.Fatalf("fleet(1) corpus = %d puzzles, serial = %d", got, want)
	}
}

// TestParallelShardsBudget checks the multi-worker runner spends at least
// the budget, shards it across all workers, and aggregates a coherent
// campaign snapshot.
func TestParallelShardsBudget(t *testing.T) {
	const budget = 6000
	f := newFleet(t, 4, 128, 7)
	f.Run(budget)

	s := f.Stats()
	if s.Execs < budget {
		t.Fatalf("execs = %d, want >= %d", s.Execs, budget)
	}
	sum := 0
	for i, w := range f.workers {
		we := w.stats.Execs
		if we == 0 {
			t.Fatalf("worker %d performed no executions", i)
		}
		sum += we
	}
	if s.Execs != sum {
		t.Fatalf("aggregate execs %d != worker sum %d", s.Execs, sum)
	}
	if s.Paths == 0 || s.Edges == 0 {
		t.Fatalf("no coverage recorded: %+v", s)
	}
	if s.CorpusPuzzles == 0 {
		t.Fatalf("shared corpus empty after Peach* campaign: %+v", s)
	}
}

// TestParallelCrashDedup verifies the merged crash bank deduplicates faults
// discovered independently by several workers: the toy target's op2 crash is
// one unique vulnerability no matter how many workers trip it.
func TestParallelCrashDedup(t *testing.T) {
	f := newFleet(t, 4, 128, 1)
	f.Run(20000)

	found := 0
	for _, w := range f.workers {
		found += w.crashes.Unique()
	}
	if found < 2 {
		t.Skipf("only %d workers tripped the crash; dedup not exercised", found)
	}
	if got := f.Crashes().Unique(); got != 1 {
		t.Fatalf("merged unique crashes = %d, want 1 (workers found it %d times)", got, found)
	}
	if got := f.Stats().UniqueCrashes; got != 1 {
		t.Fatalf("aggregated stats report %d unique crashes, want 1", got)
	}
}

// TestParallelCoverageExchange: after a run, every worker has pulled the
// fleet-wide coverage union, so no worker knows fewer edges than it
// contributed and the shared map is the union of all.
func TestParallelCoverageExchange(t *testing.T) {
	f := newFleet(t, 3, 64, 9)
	f.Run(3000)
	_ = f.Stats() // folds final worker state into the shared union

	shared := f.state.Edges()
	for i, w := range f.workers {
		if we := w.virgin.v.Edges(); we > shared {
			t.Fatalf("worker %d knows %d edges, shared union only %d", i, we, shared)
		}
	}
}

// TestParallelRunExtends: Run may be called repeatedly to extend a
// campaign, and a second call with a spent budget is a no-op.
func TestParallelRunExtends(t *testing.T) {
	f := newFleet(t, 2, 64, 3)
	f.Run(1000)
	first := f.Stats().Execs
	if first < 1000 {
		t.Fatalf("first run execs = %d, want >= 1000", first)
	}
	f.Run(first) // already spent: no-op
	if got := f.Stats().Execs; got != first {
		t.Fatalf("no-op run advanced execs %d -> %d", first, got)
	}
	f.Run(first + 1000)
	if got := f.Stats().Execs; got < first+1000 {
		t.Fatalf("extended run execs = %d, want >= %d", got, first+1000)
	}
}

// TestParallelConfigValidation: multi-worker fleets need a target factory;
// worker counts are clamped to at least one.
func TestParallelConfigValidation(t *testing.T) {
	cfg := Config{Models: toyModels(), Target: newToyTarget(), Seed: 1}
	if _, err := NewFleet(cfg, ParallelConfig{Workers: 4}); err == nil {
		t.Fatal("NewFleet without NewTarget should error for workers > 1")
	}
	f, err := NewFleet(cfg, ParallelConfig{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.Workers() != 1 {
		t.Fatalf("workers = %d, want clamped to 1", f.Workers())
	}
}

// TestParallelWorkerStreamsDiverge: worker RNG streams split from the same
// campaign seed must not mirror each other — equal streams would fuzz the
// same sequence N times and scaling would be a lie.
func TestParallelWorkerStreamsDiverge(t *testing.T) {
	f := newFleet(t, 2, 64, 5)
	a := f.workers[0].r.Uint64()
	b := f.workers[1].r.Uint64()
	if a == b {
		t.Fatalf("worker streams emit identical first draw %d", a)
	}
}

// TestRunUntilStopsAtDeadline checks the deadline-aware loop: workers make
// progress, stop promptly once the deadline passes, and leave the shared
// state synced.
func TestRunUntilStopsAtDeadline(t *testing.T) {
	for _, workers := range []int{1, 3} {
		f := newFleet(t, workers, 64, 7)
		start := time.Now()
		f.RunUntil(start.Add(50 * time.Millisecond))
		elapsed := time.Since(start)
		if f.Execs() == 0 {
			t.Fatalf("workers=%d: no executions before deadline", workers)
		}
		// Generous bound: the loop re-checks the deadline every engine
		// iteration, so overshoot is one iteration, not a merge window.
		if elapsed > 2*time.Second {
			t.Fatalf("workers=%d: RunUntil overshot deadline by %v", workers, elapsed)
		}
		s := f.Stats()
		if s.Execs != f.Execs() {
			t.Fatalf("workers=%d: stats/execs mismatch", workers)
		}
	}
}

// TestRunUntilPastDeadlineIsNoop: a deadline already in the past performs no
// executions.
func TestRunUntilPastDeadlineIsNoop(t *testing.T) {
	f := newFleet(t, 2, 64, 7)
	f.RunUntil(time.Now().Add(-time.Second))
	if f.Execs() != 0 {
		t.Fatalf("past deadline ran %d execs, want 0", f.Execs())
	}
}

// TestJournalSyncMatchesFullMerge: a fleet whose sync windows exchange
// journal deltas must end with the same shared corpus a full MergeFrom walk
// would produce (MergeFrom over the final worker states is what Stats and
// Corpus still use).
func TestJournalSyncMatchesFullMerge(t *testing.T) {
	f := newFleet(t, 3, 128, 11)
	f.Run(4000)
	// Rebuild the union corpus from scratch with full walks.
	full := corpus.New(0)
	for _, w := range f.workers {
		full.MergeFrom(w.corp)
	}
	got := f.Corpus()
	if got.Len() == 0 {
		t.Skip("campaign found no puzzles under this seed")
	}
	// The shared corpus may additionally hold puzzles a worker has since
	// evicted locally, so compare as: every signature the full walk finds
	// is present in the delta-synced corpus.
	have := map[string]bool{}
	for _, sig := range got.Signatures() {
		have[sig] = true
	}
	for _, sig := range full.Signatures() {
		if !have[sig] {
			t.Fatalf("signature %q missing from delta-synced shared corpus", sig)
		}
	}
}

// TestSeedStreamOffsetsWorkerSeeds: a distributed leaf with SeedStream k
// must fuzz exactly the RNG streams workers k..k+n-1 of a local fleet
// would, so hosts sharing a campaign seed never duplicate a stream.
func TestSeedStreamOffsetsWorkerSeeds(t *testing.T) {
	local := newFleet(t, 3, 64, 42)
	leaf, err := NewFleet(Config{
		Models:   toyModels(),
		Target:   newToyTarget(),
		Strategy: StrategyPeachStar,
		Seed:     42,
	}, ParallelConfig{Workers: 1, SeedStream: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := leaf.workers[0].cfg.Seed, local.workers[2].cfg.Seed; got != want {
		t.Fatalf("SeedStream=2 worker seed = %d, local worker 2 seed = %d", got, want)
	}
}

// TestSyncAllFlushesSingleWorkerFleet: the single-worker Run path never
// syncs (serial equivalence), so SyncAll is the explicit flush a network
// leaf uses; after it, the shared state must hold the worker's discoveries.
func TestSyncAllFlushesSingleWorkerFleet(t *testing.T) {
	f := newFleet(t, 1, 0, 42)
	f.Run(3000)
	if f.state.Edges() != 0 {
		t.Fatal("single-worker Run should not have touched the shared state")
	}
	f.SyncAll()
	if got, want := f.state.Edges(), f.workers[0].virgin.Edges(); got != want {
		t.Fatalf("shared edges after SyncAll = %d, worker knows %d", got, want)
	}
	if f.state.CorpusLen() != f.workers[0].corp.Len() {
		t.Fatalf("shared corpus = %d puzzles, worker has %d",
			f.state.CorpusLen(), f.workers[0].corp.Len())
	}
}

// TestFleetSyncCompactsJournals: after steady syncing, neither the shared
// corpus journal nor the workers' journals may retain their fully consumed
// prefixes (the multi-day-campaign memory property from the ROADMAP).
func TestFleetSyncCompactsJournals(t *testing.T) {
	f := newFleet(t, 2, 64, 5)
	f.Run(6000)
	f.SyncAll()
	st := f.state
	if base, n := st.corp.JournalBase(), st.corp.JournalLen(); base == 0 && n > 0 {
		t.Fatalf("shared journal never compacted: base %d, len %d", base, n)
	}
	for i, w := range f.workers {
		if base, n := w.corp.JournalBase(), w.corp.JournalLen(); base == 0 && n > 0 {
			t.Fatalf("worker %d journal never compacted: base %d, len %d", i, base, n)
		}
	}
}

// TestParallelExecsApprox pins the concurrency-safe progress counter a
// fleetnet node reports to remote peers: readable from another goroutine
// while Run is in flight (the -race suite covers this test), and exactly
// equal to Execs once the fleet is quiescent.
func TestParallelExecsApprox(t *testing.T) {
	f := newFleet(t, 2, 64, 7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			if got := f.ExecsApprox(); got < 0 {
				t.Errorf("ExecsApprox went negative: %d", got)
				return
			}
		}
	}()
	f.Run(4000)
	done <- struct{}{}
	<-done
	if got, want := f.ExecsApprox(), f.Execs(); got != want {
		t.Fatalf("quiescent ExecsApprox = %d, Execs = %d", got, want)
	}

	// The sync-free single-worker path publishes at the end of Run.
	s := newFleet(t, 1, 64, 7)
	s.Run(500)
	if got, want := s.ExecsApprox(), s.Execs(); got != want {
		t.Fatalf("single-worker ExecsApprox = %d, Execs = %d", got, want)
	}
}

// TestParallelRunBudgetSmallerThanWorkers: a budget that leaves some
// workers a zero shard must still terminate — those workers' absolute
// target equals their current count and they return without fuzzing,
// exactly as the pre-driver Run skipped them. (Regression: a zero
// target once meant "unbounded" and hung the fleet.)
func TestParallelRunBudgetSmallerThanWorkers(t *testing.T) {
	f := newFleet(t, 4, 0, 7)
	done := make(chan struct{})
	go func() {
		f.Run(2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run(2) with 4 workers never returned")
	}
	if got := f.Execs(); got < 2 {
		t.Fatalf("execs = %d, want >= 2", got)
	}
	// Extending the same fleet afterwards must still work.
	f.Run(600)
	if got := f.Execs(); got < 600 {
		t.Fatalf("execs after extension = %d, want >= 600", got)
	}
}
