package core

import (
	"reflect"
	"testing"
)

// newAdaptiveEngine builds a toy-target engine with the adaptive scheduler
// on — the configuration the sched.go tests exercise.
func newAdaptiveEngine(t *testing.T, seed uint64) *Engine {
	t.Helper()
	e, err := New(Config{
		Models:   toyModels(),
		Target:   newToyTarget(),
		Strategy: StrategyPeachStar,
		Seed:     seed,
		Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAdaptiveOffNoSchedulerState: with Config.Adaptive unset the
// scheduler stays the zero value — no stats surface, no distillations, no
// scheduler code on the hot path.
func TestAdaptiveOffNoSchedulerState(t *testing.T) {
	e := newEngine(t, StrategyPeachStar, 1)
	if e.Adaptive() {
		t.Fatal("scheduler on without Config.Adaptive")
	}
	e.Run(2000)
	s := e.Stats()
	if s.MutatorStats != nil || s.Distills != 0 {
		t.Fatalf("adaptive-off stats carry scheduler state: %+v", s)
	}
}

// TestAdaptiveReproducible: an adaptive campaign is a pure function of its
// seed — the scheduler's weighted draws consume the same deterministic RNG
// and its weight updates are plain arithmetic over deterministic counters.
func TestAdaptiveReproducible(t *testing.T) {
	a := newAdaptiveEngine(t, 7)
	b := newAdaptiveEngine(t, 7)
	a.Run(20000)
	b.Run(20000)
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("adaptive runs diverged:\n%+v\n%+v", sa, sb)
	}
	if a.Corpus().Len() != b.Corpus().Len() {
		t.Fatalf("corpora diverged: %d vs %d", a.Corpus().Len(), b.Corpus().Len())
	}
}

// TestAdaptiveMutatorAccounting: the lifetime operator counters behave as
// counters — trials accumulate across the run, hits never exceed trials,
// and the names map one-to-one onto the mutator suite.
func TestAdaptiveMutatorAccounting(t *testing.T) {
	e := newAdaptiveEngine(t, 3)
	e.Run(20000)
	stats := e.Stats().MutatorStats
	if len(stats) != len(e.muts) {
		t.Fatalf("%d mutator stats for %d mutators", len(stats), len(e.muts))
	}
	var trials uint64
	for i, st := range stats {
		if st.Name != e.muts[i].Name() {
			t.Fatalf("stat %d named %q, mutator is %q", i, st.Name, e.muts[i].Name())
		}
		if st.Hits > st.Trials {
			t.Fatalf("%s: %d hits out of %d trials", st.Name, st.Hits, st.Trials)
		}
		trials += st.Trials
	}
	if trials == 0 {
		t.Fatal("no trials recorded over 20000 adaptive executions")
	}
}

// TestAdaptiveWeightBounds: once a model leaves warmup its weight table is
// live and every operator sits inside [floor, floor+span] — the bounds the
// starvation guarantee rests on. Models still in warmup keep a nil table
// (the uniform draw).
func TestAdaptiveWeightBounds(t *testing.T) {
	e := newAdaptiveEngine(t, 5)
	e.Run(30000)
	s := &e.sched
	live := 0
	for mi := range s.weights {
		if s.weights[mi] == nil {
			if s.totalTrials[mi] >= schedWarmupTrials+schedRecalcEvery {
				t.Fatalf("model %d has %d trials but no weight table", mi, s.totalTrials[mi])
			}
			continue
		}
		live++
		for i, w := range s.weights[mi] {
			if w < schedFloorWeight || w > schedFloorWeight+schedSpanWeight {
				t.Fatalf("model %d mutator %d weight %d outside [%d, %d]",
					mi, i, w, schedFloorWeight, schedFloorWeight+schedSpanWeight)
			}
		}
	}
	if live == 0 {
		t.Fatal("no model left warmup over 30000 executions")
	}
}

// TestDistillPreservesUnionEdges: a forced distillation keeps the tracked
// contributors' union edge set intact by construction, prunes exactly the
// puzzles it reports, and leaves consistent tracker bookkeeping.
func TestDistillPreservesUnionEdges(t *testing.T) {
	e := newAdaptiveEngine(t, 11)
	for budget := 5000; len(e.sched.contribs) < 4 && budget <= 40000; budget += 5000 {
		e.Run(budget)
	}
	s := &e.sched
	if len(s.contribs) < 4 {
		t.Skipf("only %d contributors tracked; toy campaign too shallow for a meaningful cover", len(s.contribs))
	}

	union := func(contribs []contributor) map[uint16]bool {
		u := make(map[uint16]bool)
		for _, c := range contribs {
			for _, edge := range c.edges {
				u[edge] = true
			}
		}
		return u
	}
	before := union(s.contribs)
	nBefore := len(s.contribs)
	corpusBefore := e.corp.Len()
	distillsBefore := s.distills

	e.distillCorpus()

	if s.distills != distillsBefore+1 || len(s.pending) == 0 {
		t.Fatalf("distillation not recorded: distills=%d pending=%d", s.distills, len(s.pending))
	}
	info := s.pending[len(s.pending)-1]
	if info.SeedsKept != len(s.contribs) || info.SeedsKept+info.SeedsDropped != nBefore {
		t.Fatalf("cover bookkeeping: %+v with %d contributors before, %d after",
			info, nBefore, len(s.contribs))
	}
	after := union(s.contribs)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("distillation lost edges: union %d → %d", len(before), len(after))
	}
	if info.Edges != len(before) {
		t.Fatalf("reported union %d edges, tracker has %d", info.Edges, len(before))
	}
	if got := corpusBefore - e.corp.Len(); got != info.PuzzlesDropped {
		t.Fatalf("corpus shrank by %d puzzles, distillation reported %d", got, info.PuzzlesDropped)
	}

	// A second pass over the already-minimal set changes nothing: every
	// contributor is in the cover, nothing to prune.
	lenBefore := e.corp.Len()
	e.distillCorpus()
	info = s.pending[len(s.pending)-1]
	if info.SeedsDropped != 0 || info.PuzzlesDropped != 0 || e.corp.Len() != lenBefore {
		t.Fatalf("re-distilling a minimal set pruned something: %+v", info)
	}
}

// TestTakeDistills: the pending queue drains once and stays empty.
func TestTakeDistills(t *testing.T) {
	e := newAdaptiveEngine(t, 13)
	if got := e.takeDistills(); got != nil {
		t.Fatalf("fresh engine has pending distills: %+v", got)
	}
	e.sched.pending = append(e.sched.pending, DistillInfo{SeedsKept: 1})
	if got := e.takeDistills(); len(got) != 1 {
		t.Fatalf("take = %+v, want the one pending entry", got)
	}
	if got := e.takeDistills(); got != nil {
		t.Fatalf("second take = %+v, want nil", got)
	}
}

// TestSemanticGenerateSteadyStateAllocs guards the donor-scratch fix: in
// steady state a semantic generation round writes its cross-model donor
// filtering into engine-owned scratch (donorScr) and its trees and seeds
// into the arena, so the round itself stays allocation-lean. The budget is
// deliberately above zero: batch dedup keys and valuable-queue copies are
// real retention, not scratch — but a regression to per-round donor-slice
// allocation (one per leaf per round) blows well past it.
func TestSemanticGenerateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	e := newEngine(t, StrategyPeachStar, 1)
	e.Run(30000) // warm: corpus, valuable queues, scratch high-water marks
	if e.corp.Empty() {
		t.Fatal("warmup produced no corpus; semantic rounds would be no-ops")
	}
	m := e.cfg.Models[0]
	avg := testing.AllocsPerRun(200, func() {
		e.arena.Reset()
		e.pending = e.pending[:0]
		e.semanticGenerate(m)
	})
	t.Logf("semantic round: %.2f allocs", avg)
	// Measures 2.0 on the toy target (batch-key retention); a per-leaf
	// donor-slice regression adds one per leaf per round, far above 4.
	const budget = 4.0
	if avg > budget {
		t.Fatalf("semantic generation allocates %.2f objects/round, budget %.1f — donor scratch has regressed", avg, budget)
	}
}
