//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation-exact
// tests skip under it.
const raceEnabled = true
