package core

import (
	"fmt"

	"repro/internal/datamodel"
	"repro/internal/executor"
	"repro/internal/sandbox"
	"repro/internal/session"
)

// This file is the stateful-session fuzzing loop (Config.Session): instead
// of one packet per execution, an iteration walks the protocol state
// machine and drives a whole message *sequence* down one target session.
// Everything below is gated on Config.Session being non-nil; with it nil
// no session code runs, no session state is allocated, and the engine is
// bit-for-bit identical to the single-packet build — pinned by the golden
// suites.
//
// The loop composes the existing machinery rather than duplicating it:
// per-step payloads come from the same baselineGenerate/pickMutator path
// (so the adaptive scheduler keeps learning byte-level operators, now per
// step), valuable steps still feed the cracker and the donor corpus, and
// retained sequences ride the corpus journal — and with it fleetnet sync —
// through the reserved corpus.SeqSignature namespace. On top of that sit
// the sequence-granularity mutation operators of internal/session
// (splice/reorder/drop/truncate plus per-step payload regeneration),
// scheduled by the same floor+span yield weighting as the byte mutators,
// and per-state coverage accounting: every message is tagged with the
// state it was sent from, and edge discoveries attribute to that state.

// StateCoverage is one state's session-fuzzing accounting: how many
// messages were sent from it and how many coverage edges those messages
// discovered. The per-state breakdown is what tells a campaign operator
// which part of the protocol state machine the fuzzer actually reaches —
// the deep-state analogue of the Paths metric.
type StateCoverage struct {
	// State is the state's name in the StateModel.
	State string
	// Sent counts messages sent from this state.
	Sent uint64
	// Edges counts coverage edges first discovered by a message sent from
	// this state.
	Edges int
}

// StateInfo records the first time a campaign sent a message from a state
// — the session analogue of a new-coverage event (WindowInfo.NewStates).
type StateInfo struct {
	// State is the state's name in the StateModel.
	State string
	// Exec is the engine's execution count when the state was first
	// exercised.
	Exec int
}

const (
	// sessionRetained bounds the retained valuable-sequence queue, like
	// valuablePerModel bounds the per-model instance queues.
	sessionRetained = 32
	// seqOpPayload is the sequence-operator index of "regenerate one
	// step's payload" — the operator that reuses the whole byte-level
	// generation path on a single step of a retained sequence.
	seqOpPayload = session.NumOps
	// seqOpChoices is the sequence-operator count: the structural
	// operators of internal/session plus the payload operator.
	seqOpChoices = session.NumOps + 1
	// seqOpWarmup is the trial count below which the sequence-operator
	// draw stays uniform, mirroring the byte-mutator pilot phase.
	seqOpWarmup = 256
)

// seqOpName names a sequence operator for Stats.SeqOpStats.
func seqOpName(op int) string {
	if op == seqOpPayload {
		return "seq-payload"
	}
	return session.OpName(op)
}

// retainedSeq is one retained valuable sequence: a deep copy of the
// prefix that proved valuable, plus the state the walk ended in (the
// rarity key for base selection).
type retainedSeq struct {
	seq      session.Sequence
	endState int
}

// sessionCore is the engine's session-fuzzing state; nil unless
// Config.Session is set.
type sessionCore struct {
	sm *session.StateModel //peachstar:nosnap state-machine wiring from Config.Session
	// actModel maps (state, action) to the index of the action's data
	// model in Config.Models, resolved once at construction.
	//peachstar:nosnap construction wiring, re-resolved from Config
	actModel [][]int

	// Per-state accounting: messages sent from each state, edges
	// attributed to each state, and the first-reach log.
	stateSent  []uint64
	stateEdges []int
	reached    []bool
	reachedN   int //peachstar:nosnap derived from reached; recounted on restore
	// pendingStates queues first-reach events for the driver's window
	// hook, drained like the scheduler's pending distills.
	pendingStates []StateInfo
	// prevEdges is the union edge count the last attribution saw; re-read
	// at every sequence start so edges merged in from fleet peers between
	// iterations are never attributed to a local state.
	//peachstar:nosnap re-read at every sequence start
	prevEdges int

	// seqs is the retained valuable-sequence queue (deep copies; oldest
	// evicted at sessionRetained).
	seqs []retainedSeq

	// Sequence-operator accounting: lifetime trials and hits per operator,
	// driving the floor+span weighted draw once past warmup. opRound is
	// the operator applied this iteration (-1 for fresh walks), credited a
	// hit when any step of the iteration proves valuable.
	opTrials [seqOpChoices]uint64
	opHits   [seqOpChoices]uint64
	opRound  int //peachstar:nosnap per-iteration credit context; restore resets it

	// Per-iteration scratch: the working sequence, and per-step credit
	// context — which model each step's payload was generated for this
	// round (-1 = payload carried over from an earlier round) and which
	// mutators were applied, so the scheduler's per-execution credit
	// assignment sees exactly the round that produced the step it
	// observes.
	cur       session.Sequence //peachstar:nosnap per-iteration working sequence; restore resets it
	stepModel []int            //peachstar:nosnap per-iteration credit context
	stepMuts  [][]int          //peachstar:nosnap per-iteration credit context
	// encScratch reuses the encode buffer for corpus sequence entries.
	//peachstar:nosnap reusable encode buffer
	encScratch []byte
}

// newSessionCore validates the state model against the configured data
// models and builds the session state.
func newSessionCore(sm *session.StateModel, models []*datamodel.Model) (*sessionCore, error) {
	if err := sm.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	idx := make(map[string]int, len(models))
	for i, m := range models {
		idx[m.Name] = i
	}
	s := &sessionCore{
		sm:         sm,
		actModel:   make([][]int, len(sm.States)),
		stateSent:  make([]uint64, len(sm.States)),
		stateEdges: make([]int, len(sm.States)),
		reached:    make([]bool, len(sm.States)),
		opRound:    -1,
	}
	for si := range sm.States {
		st := &sm.States[si]
		s.actModel[si] = make([]int, len(st.Actions))
		for ai := range st.Actions {
			mi, ok := idx[st.Actions[ai].Model]
			if !ok {
				return nil, fmt.Errorf("core: state model %q: state %q action %d sends unknown data model %q",
					sm.Name, st.Name, ai, st.Actions[ai].Model)
			}
			s.actModel[si][ai] = mi
		}
	}
	return s, nil
}

// stepSession is one iteration of the session loop: generate a message
// sequence (a fresh state-machine walk, or a mutated retained sequence),
// then drive it down one target session, processing feedback per step.
func (e *Engine) stepSession() int {
	e.stats.Iterations++
	e.arena.Reset()
	e.generateSequence()
	return e.executeSequence()
}

// generateSequence fills the working sequence: once valuable sequences
// have been retained most iterations mutate one of them; the rest — and
// every iteration before the first retention — walk the state machine
// fresh.
func (e *Engine) generateSequence() {
	s := e.sess
	s.opRound = -1
	s.cur.Steps = s.cur.Steps[:0]
	if len(s.seqs) > 0 && !e.r.Chance(3) {
		e.mutateSequence()
		if len(s.cur.Steps) > 0 {
			return
		}
		// The operator emptied the sequence (Repair dropped every step);
		// fall through to a fresh walk so the iteration still executes.
	}
	e.freshWalk()
}

// freshWalk generates a legal walk from the initial state: at each state
// pick one available action uniformly, generate its payload, advance.
// Length is bounded by the model's walk cap with geometric early stopping,
// so short handshake prefixes and full-depth walks both occur.
func (e *Engine) freshWalk() {
	s := e.sess
	s.cur.Steps = s.cur.Steps[:0]
	s.stepModel = s.stepModel[:0]
	cur := s.sm.Initial
	walkCap := s.sm.WalkCap()
	for len(s.cur.Steps) < walkCap {
		acts := s.sm.States[cur].Actions
		if len(acts) == 0 {
			break // terminal state
		}
		ai := e.r.Intn(len(acts))
		i := len(s.cur.Steps)
		data := e.genStepPayload(s.actModel[cur][ai])
		s.cur.Steps = append(s.cur.Steps, session.Step{State: cur, Action: ai, Data: data})
		s.noteStepGen(i, s.actModel[cur][ai])
		e.noteStepMuts(i)
		cur = acts[ai].Next
		if e.r.Chance(4) {
			break
		}
	}
}

// mutateSequence picks a retained (or fleet-synced) base sequence and
// applies one sequence operator: a structural operator from
// internal/session, or payload regeneration on one step.
func (e *Engine) mutateSequence() {
	s := e.sess
	base := e.pickSeqBase()
	// Shallow-copy the steps into the working sequence: the structural
	// operators mutate the step slice in place and must never corrupt the
	// retained deep copies. Payload bytes are aliased — no operator writes
	// through them.
	s.cur.Steps = append(s.cur.Steps[:0], base.Steps...)
	op := e.pickSeqOp()
	s.opRound = op
	s.opTrials[op]++
	if op < session.NumOps {
		var donor session.Sequence
		if op == session.OpSplice {
			donor = s.seqs[e.r.Intn(len(s.seqs))].seq
		}
		session.Apply(e.r, s.sm, op, &s.cur, donor)
	}
	s.clearStepGen()
	if op == seqOpPayload {
		if n := len(s.cur.Steps); n > 0 {
			i := e.r.Intn(n)
			st := &s.cur.Steps[i]
			mi := s.actModel[st.State][st.Action]
			st.Data = e.genStepPayload(mi)
			s.noteStepGen(i, mi)
			e.noteStepMuts(i)
		}
	}
}

// pickSeqBase selects the base sequence for mutation: occasionally a
// fleet-synced corpus sequence (entries peers pushed through the journal,
// repaired onto this model), otherwise a retained sequence drawn with
// rarity weighting — sequences ending in rarely-exercised states are
// preferred, the session analogue of rarity-weighted seed selection.
func (e *Engine) pickSeqBase() session.Sequence {
	s := e.sess
	if pool := e.corp.Sequences(s.sm.Name); len(pool) > 0 && e.r.Chance(8) {
		enc := pool[e.r.Intn(len(pool))]
		if seq, err := session.Decode(enc.Data); err == nil {
			s.sm.Repair(&seq)
			if len(seq.Steps) > 0 {
				return seq
			}
		}
	}
	var maxSent uint64
	for _, n := range s.stateSent {
		if n > maxSent {
			maxSent = n
		}
	}
	weight := func(rs *retainedSeq) uint64 {
		return 1 + maxSent/(1+s.stateSent[rs.endState])
	}
	var total uint64
	for i := range s.seqs {
		total += weight(&s.seqs[i])
	}
	k := e.r.Uint64() % total // total >= len(seqs) >= 1
	for i := range s.seqs {
		if w := weight(&s.seqs[i]); k < w {
			return s.seqs[i].seq
		} else {
			k -= w
		}
	}
	return s.seqs[len(s.seqs)-1].seq // unreachable: k < total
}

// pickSeqOp draws one sequence operator: uniform until warmup (and always
// without the adaptive scheduler), then weighted floor+span by smoothed
// yield — the same shape the byte-mutator scheduler uses, so campaigns
// learn which granularity of sequence perturbation pays.
func (e *Engine) pickSeqOp() int {
	s := e.sess
	if !e.sched.on {
		return e.r.Intn(seqOpChoices)
	}
	var trials uint64
	for _, t := range s.opTrials {
		trials += t
	}
	if trials < seqOpWarmup {
		return e.r.Intn(seqOpChoices)
	}
	var yields [seqOpChoices]float64
	maxY := 0.0
	for i := range s.opTrials {
		y := (float64(s.opHits[i]) + 1) / (float64(s.opTrials[i]) + schedYieldPrior)
		yields[i] = y
		if y > maxY {
			maxY = y
		}
	}
	var weights [seqOpChoices]uint64
	var total uint64
	for i, y := range yields {
		weights[i] = schedFloorWeight + uint64(schedSpanWeight*y/maxY+0.5)
		total += weights[i]
	}
	k := e.r.Uint64() % total
	for i, w := range weights {
		if k < w {
			return i
		}
		k -= w
	}
	return seqOpChoices - 1 // unreachable: k < total
}

// genStepPayload renders one step's payload for model mi: half the time
// the model's faithful default instance with fixups applied — legal
// handshake material that carries the walk deep into the state machine —
// and half the time the full baseline generation path, mutators and all.
func (e *Engine) genStepPayload(mi int) []byte {
	m := e.cfg.Models[mi]
	if e.sched.on {
		e.sched.beginRound(mi)
	}
	if e.r.Bool() {
		inst := m.GenerateInto(&e.arena)
		m.ApplyFixups(inst)
		return e.render(inst)
	}
	return e.baselineGenerate(m)
}

// noteStepGen records step i's generation round: the model its payload
// was generated for and the mutators applied, copied out of the
// scheduler's live round state.
func (s *sessionCore) noteStepGen(i, mi int) {
	s.growStepScratch(i + 1)
	s.stepModel[i] = mi
	s.stepMuts[i] = s.stepMuts[i][:0]
}

// noteStepMuts copies the scheduler's round credit set into step i's
// slot; called by the engine right after generating the payload.
func (e *Engine) noteStepMuts(i int) {
	s := e.sess
	if e.sched.on {
		s.stepMuts[i] = append(s.stepMuts[i][:0], e.sched.roundMuts...)
	}
}

// clearStepGen resets every step's credit context to "payload carried
// over from an earlier round": no model, no mutators.
func (s *sessionCore) clearStepGen() {
	n := len(s.cur.Steps)
	s.growStepScratch(n)
	s.stepModel = s.stepModel[:n]
	for i := 0; i < n; i++ {
		s.stepModel[i] = -1
		s.stepMuts[i] = s.stepMuts[i][:0]
	}
}

// growStepScratch extends the per-step scratch to at least n entries.
func (s *sessionCore) growStepScratch(n int) {
	for len(s.stepModel) < n {
		s.stepModel = append(s.stepModel, -1)
	}
	for len(s.stepMuts) < n {
		s.stepMuts = append(s.stepMuts, nil)
	}
}

// executeSequence drives the working sequence down one target session:
// open a session boundary on session-aware backends, then run each step,
// processing crash, hang, coverage and per-state feedback. A non-OK step
// aborts the rest of the sequence — the target's session is gone.
func (e *Engine) executeSequence() int {
	s := e.sess
	if e.execErr != nil {
		return 0
	}
	if bs, ok := e.exec.(executor.SessionExecutor); ok {
		if err := bs.BeginSession(); err != nil {
			e.execErr = err
			return 0
		}
	}
	e.stats.Sequences++
	s.prevEdges = e.virgin.Edges()
	execs := 0
	anyValuable := false
	for i := range s.cur.Steps {
		st := &s.cur.Steps[i]
		e.stats.Execs++
		execs++
		res, err := e.exec.Run(st.Data)
		if err != nil {
			if e.execErr == nil {
				e.execErr = err
			}
			break
		}
		switch res.Outcome {
		case sandbox.Crash:
			repro, starts := res.Repro, res.ReproStarts
			if repro == nil {
				// In-process backends report no journal; the executed
				// prefix *is* the reproducer, one session from the top.
				repro = make([][]byte, 0, i+1)
				for j := 0; j <= i; j++ {
					repro = append(repro, s.cur.Steps[j].Data)
				}
				starts = []int{0}
			}
			e.crashes.ReportSequenceSteps(res.Fault, st.Data, repro, starts, e.stats.Execs, res.PathSig)
		case sandbox.Hang:
			e.crashes.ReportHangDetail(res.HangSteps, st.Data)
		}
		s.noteSent(st.State, e.stats.Execs)
		valuable := e.virgin.MergeTracer(e.exec.Tracer())
		if e.sched.on {
			// Restore the round context of the step being observed, so
			// operator credit lands on the mutators that actually produced
			// this payload (steps carried over from earlier rounds carry
			// none). The live round slice is swapped back afterwards: the
			// next beginRound truncates it in place and must not scribble
			// over the step's stored credit set.
			e.sched.curModel = s.stepModel[i]
			liveMuts := e.sched.roundMuts
			e.sched.roundMuts = s.stepMuts[i]
			e.observeExec(valuable)
			e.sched.roundMuts = liveMuts
		}
		if valuable {
			anyValuable = true
			e.stats.Paths++
			cur := e.virgin.Edges()
			s.stateEdges[st.State] += cur - s.prevEdges
			s.prevEdges = cur
			star := e.cfg.Strategy == StrategyPeachStar || e.cfg.Strategy == StrategyMutationStar
			if star && !e.cfg.DisableCracker {
				e.crackValuable(st.Data, e.exec.Tracer().CountEdges())
			}
			e.retainSequence(i)
		}
		if res.Outcome != sandbox.OK {
			break
		}
	}
	if e.sched.on {
		e.sched.curModel = -1
	}
	if s.opRound >= 0 && anyValuable {
		s.opHits[s.opRound]++
	}
	return execs
}

// noteSent records one message sent from the state, logging the first
// exercise of each state for the driver's window hook.
func (s *sessionCore) noteSent(state, exec int) {
	s.stateSent[state]++
	if !s.reached[state] {
		s.reached[state] = true
		s.reachedN++
		s.pendingStates = append(s.pendingStates, StateInfo{State: s.sm.States[state].Name, Exec: exec})
	}
}

// retainSequence deep-copies the valuable prefix (steps 0..i) into the
// retained queue and publishes its encoding to the corpus, where the
// journal — and through it fleetnet sync — carries it to peers.
func (e *Engine) retainSequence(i int) {
	s := e.sess
	prefix := session.Sequence{Steps: s.cur.Steps[:i+1]}.Clone()
	end := s.sm.States[prefix.Steps[i].State].Actions[prefix.Steps[i].Action].Next
	s.seqs = append(s.seqs, retainedSeq{seq: prefix, endState: end})
	if len(s.seqs) > sessionRetained {
		s.seqs = s.seqs[1:]
	}
	s.encScratch = session.Encode(s.encScratch[:0], prefix)
	enc := append([]byte(nil), s.encScratch...)
	e.corp.AddSequence(s.sm.Name, enc)
}

// takeNewStates returns and clears the first-reach events logged since
// the last call — the driver drains it at window boundaries.
func (e *Engine) takeNewStates() []StateInfo {
	if e.sess == nil || len(e.sess.pendingStates) == 0 {
		return nil
	}
	out := e.sess.pendingStates
	e.sess.pendingStates = nil
	return out
}

// stateCoverage builds the per-state accounting snapshot.
func (s *sessionCore) stateCoverage() []StateCoverage {
	out := make([]StateCoverage, len(s.sm.States))
	for i := range s.sm.States {
		out[i] = StateCoverage{
			State: s.sm.States[i].Name,
			Sent:  s.stateSent[i],
			Edges: s.stateEdges[i],
		}
	}
	return out
}

// seqOpStats builds the sequence-operator accounting snapshot.
func (s *sessionCore) seqOpStats() []MutatorStat {
	out := make([]MutatorStat, seqOpChoices)
	for i := range out {
		out[i] = MutatorStat{Name: seqOpName(i), Trials: s.opTrials[i], Hits: s.opHits[i]}
	}
	return out
}
