package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/executor"
	"repro/internal/rng"
	"repro/internal/sandbox"
)

// This file implements the sharded campaign runner: one fuzzing campaign
// split across N worker engines. Each worker owns the full serial machinery
// — its own RNG stream (split from the campaign seed), its own target
// instance and sandbox, its own coverage accumulator, puzzle corpus and
// crash bank — and runs the unmodified serial loop. Workers meet only at
// coarse-grained sync points: every MergeEvery executions a worker publishes
// its coverage and puzzles into the shared campaign state and folds the
// other workers' discoveries back out, all under one mutex. Between syncs
// there is no shared mutable state at all, so the hot loop is exactly the
// serial hot loop.

// DefaultMergeEvery is the default number of per-worker executions between
// synchronizations with the shared campaign state. Small enough that
// cross-worker donation (a puzzle cracked on worker A donated by worker B)
// happens many times per campaign, large enough that the mutex is cold.
const DefaultMergeEvery = 256

// ParallelConfig parameterizes a Fleet beyond the per-engine Config.
type ParallelConfig struct {
	// Workers is the number of worker engines; 0 and 1 both mean serial.
	Workers int
	// NewTarget constructs a fresh target instance for each worker beyond
	// the first (which uses Config.Target). Required when Workers > 1:
	// targets are stateful servers and must not be shared across
	// goroutines.
	NewTarget func() sandbox.Target
	// MergeEvery is the per-worker execution count between shared-state
	// syncs (0 = DefaultMergeEvery).
	MergeEvery int
	// SeedStream offsets the RNG stream indices the workers draw: worker i
	// fuzzes with rng.Split(Config.Seed, SeedStream+i). Zero for a local
	// fleet; distributed leaves sharing one campaign seed use disjoint
	// offsets so no two hosts fuzz the same stream.
	SeedStream int
}

// Fleet is one fuzzing campaign sharded across parallel worker engines. A
// single-worker Fleet is bit-for-bit identical to the serial Engine with the
// same Config: worker 0 keeps the campaign seed (rng.Split stream 0) and the
// single-worker Run path performs no sync operations.
//
// Run blocks until the budget is spent; Stats, Crashes and Corpus must not
// be called concurrently with Run.
type Fleet struct {
	workers []*Engine
	peers   []*workerPeer
	merge   int
	// state is the shared campaign state. Workers touch it only at sync
	// points; everything else they own privately. A network transport
	// attaches to the same state (see State), which is how remote
	// discoveries reach the workers: they arrive in the shared state and
	// the workers' next pull folds them out.
	state *SyncState
	// pubEdges and pubCorpus are the fleet-level published union figures,
	// refreshed at every merge window (see driver.go); with the workers'
	// published counters they are what StatsApprox reads while a Drive is
	// in flight.
	pubEdges  int64
	pubCorpus int64
	// adaptive is 1 when the workers run the adaptive scheduler; atomic so
	// StatsApprox can gate on it from any goroutine after a mid-campaign
	// EnableAdaptive.
	adaptive int32
}

// workerPeer adapts one worker engine to the SyncPeer merge path. It holds
// the worker's journal cursors: how much of the worker's corpus journal has
// been pushed into the shared corpus, and how much of the shared journal
// has been pulled back out. Deltas make a sync window O(puzzles found since
// the last window), not O(corpus).
type workerPeer struct {
	w      *Engine
	pushed int // cursor into the worker's own journal
	pulled int // cursor into the shared corpus's journal
	// selfID registers the fleet as the consumer of the worker's journal,
	// sharedID registers the worker as a consumer of the shared journal;
	// both feed journal compaction.
	selfID   int
	sharedID int
	// execsPub is the worker's execution count as of its latest sync
	// window, published atomically so concurrent observers (a fleetnet
	// node building acks on handler goroutines) can read fleet progress
	// without touching the workers' live counters. See Fleet.ExecsApprox.
	execsPub int64
	// The remaining published counters feed Fleet.StatsApprox the same
	// way: stored by the worker at each window boundary, loaded by any
	// goroutine.
	pathsPub    int64
	itersPub    int64
	semExecsPub int64
	semPathsPub int64
	restartsPub int64
	// crashesSeen is the driver's per-worker crash watermark: how many of
	// this worker's unique records previous windows already reported
	// through the WindowHook. Touched only by the worker's own goroutine.
	crashesSeen int
	// mutTrialsPub/mutHitsPub/distillsPub publish the worker's adaptive
	// scheduler accounting (suite-indexed lifetime trials and hits, and
	// the distillation count) the same way as the counters above. The
	// slices are always allocated so a mid-campaign EnableAdaptive needs
	// no resizing; they stay zero when the scheduler is off.
	mutTrialsPub []int64
	mutHitsPub   []int64
	distillsPub  int64
	// seqsPub/statesPub publish the worker's session-fuzzing counters
	// (sequences driven, states reached); zero when sessions are off.
	seqsPub   int64
	statesPub int64
}

// Exchange is the local half of the merge protocol (invoked under the
// shared-state lock): publish this worker's coverage and puzzles, then fold
// the shared state back into the worker. The pull half is what makes
// sharding more than N independent campaigns — a worker stops re-counting
// paths the fleet has already found and gains donor material cracked by its
// peers (local or, through the network transport, remote). After each
// window the consumed journal prefixes are compacted away on both sides.
func (p *workerPeer) Exchange(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
	w := p.w
	atomic.StoreInt64(&p.execsPub, int64(w.stats.Execs))
	virgin.MergeVirgin(w.virgin.v)
	w.virgin.v.MergeVirgin(virgin)
	_, p.pushed = corp.MergeJournal(w.corp, p.pushed)
	w.corp.AdvancePeer(p.selfID, p.pushed)
	w.corp.CompactJournal()
	_, p.pulled = w.corp.MergeJournal(corp, p.pulled)
	corp.AdvancePeer(p.sharedID, p.pulled)
	corp.CompactJournal()
	// Publish the worker's unique faults so a network hub can relay them;
	// Absorb is an idempotent max-count merge, so republishing every
	// window never inflates counts. Unique faults are rare, so the
	// snapshot cost is negligible against a merge window.
	if w.crashes.Unique() > 0 {
		for _, r := range w.crashes.Records() {
			crashes.Absorb(r)
		}
	}
	return nil
}

// NewFleet validates the configuration and builds the worker engines.
// Worker i fuzzes with seed rng.Split(cfg.Seed, SeedStream+i); models are
// shared across workers (chunks are immutable once built), targets are not.
func NewFleet(cfg Config, pcfg ParallelConfig) (*Fleet, error) {
	workers := pcfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && pcfg.NewTarget == nil {
		return nil, fmt.Errorf("core: ParallelConfig.NewTarget is required for %d workers", workers)
	}
	merge := pcfg.MergeEvery
	if merge <= 0 {
		merge = DefaultMergeEvery
	}
	f := &Fleet{
		merge: merge,
		state: NewSyncState(cfg.CorpusPerSig),
	}
	for i := 0; i < workers; i++ {
		wcfg := cfg
		wcfg.Seed = rng.Split(cfg.Seed, pcfg.SeedStream+i)
		if i > 0 {
			wcfg.Target = pcfg.NewTarget()
		}
		eng, err := New(wcfg)
		if err != nil {
			return nil, err
		}
		f.workers = append(f.workers, eng)
		f.peers = append(f.peers, &workerPeer{
			w:            eng,
			selfID:       eng.corp.RegisterPeer(0),
			sharedID:     f.state.corp.RegisterPeer(0),
			mutTrialsPub: make([]int64, len(eng.muts)),
			mutHitsPub:   make([]int64, len(eng.muts)),
		})
	}
	if cfg.Adaptive {
		atomic.StoreInt32(&f.adaptive, 1)
	}
	return f, nil
}

// EnableAdaptive switches every worker's adaptive scheduler on (see
// sched.go); idempotent, and a no-op for campaigns built with
// Config.Adaptive. Must not be called while a Drive is in flight. Enabling
// mid-campaign is permanent: seeds retained before the switch carry no
// edge lists and are scored minimally until re-discovered.
func (f *Fleet) EnableAdaptive() {
	for _, w := range f.workers {
		w.enableAdaptive()
	}
	atomic.StoreInt32(&f.adaptive, 1)
}

// Adaptive reports whether the fleet's workers run the adaptive scheduler.
// Safe to call from any goroutine.
func (f *Fleet) Adaptive() bool { return atomic.LoadInt32(&f.adaptive) == 1 }

// State exposes the fleet's shared campaign state, the attachment point for
// the network transport: a fleetnet hub serves it to remote leaves, a
// fleetnet leaf exchanges it with its hub. Anything merged into the state
// reaches the workers at their next sync window.
func (f *Fleet) State() *SyncState { return f.state }

// SyncAll runs one merge window for every worker, serialized against any
// concurrent peers of the shared state. Network leaves call it to flush
// worker discoveries into the shared state before an uplink exchange (and
// to fold freshly arrived remote state back out): the single-worker
// Run/RunUntil paths never sync on their own, preserving their bit-for-bit
// equivalence with the serial engine, so the flush must be explicit. Must
// not be called while Run is in flight.
func (f *Fleet) SyncAll() {
	for _, p := range f.peers {
		f.state.Exchange(p)
	}
}

// Workers returns the fleet's parallelism.
func (f *Fleet) Workers() int { return len(f.workers) }

// SwapExecutor replaces the lone worker's execution backend, returning the
// previous one — how the session layer attaches a real-target backend to a
// campaign. A supervised process serves one connection-driving worker, so
// multi-worker fleets are refused; run several processes under several
// campaigns instead. Must not be called while a Drive is in flight.
func (f *Fleet) SwapExecutor(x executor.Executor) (executor.Executor, error) {
	if len(f.workers) != 1 {
		return nil, fmt.Errorf("core: a process-backed campaign needs exactly 1 worker, fleet has %d", len(f.workers))
	}
	return f.workers[0].SwapExecutor(x), nil
}

// ExecError returns the first unrecoverable execution-backend failure any
// worker hit, or nil. A failed backend stops its worker's loop early; the
// campaign result carries this error.
func (f *Fleet) ExecError() error {
	for _, w := range f.workers {
		if w.execErr != nil {
			return w.execErr
		}
	}
	return nil
}

// Execs returns the total executions performed so far — the budget
// arithmetic accessor. Unlike Stats it merges nothing, so driving loops can
// call it every slice without touching the shared state. Like Stats it must
// not race with Run; concurrent observers use ExecsApprox.
func (f *Fleet) Execs() int {
	total := 0
	for _, w := range f.workers {
		total += w.stats.Execs
	}
	return total
}

// ExecsApprox returns the fleet's total executions as of each worker's
// latest sync window. Unlike Execs it is safe to call from any goroutine
// while Run is in flight — a fleetnet hub or mesh node reports local
// progress to remote peers from connection-handler goroutines through it.
// The figure lags the live counters by at most one merge window during a
// multi-worker Run (and by the whole run for a sync-free single-worker
// Run) and is exact whenever the fleet is idle.
func (f *Fleet) ExecsApprox() int {
	total := 0
	for _, p := range f.peers {
		total += int(atomic.LoadInt64(&p.execsPub))
	}
	return total
}

// publishExecs refreshes every worker's published counter; called when the
// workers are quiescent (end of Run/RunUntil).
func (f *Fleet) publishExecs() {
	for i, w := range f.workers {
		atomic.StoreInt64(&f.peers[i].execsPub, int64(w.stats.Execs))
	}
}

// Step performs one iteration on worker 0 and returns how many executions it
// spent — the fine-grained sampling hook the harness uses. For multi-worker
// fleets it advances only worker 0; use Run to drive the whole fleet.
func (f *Fleet) Step() int { return f.workers[0].Step() }

// Run fuzzes until at least execBudget total executions have been performed,
// sharding the remaining budget evenly across the workers. It may be called
// repeatedly to extend a campaign. With one worker it is the serial
// Engine.Run, sync-free and bit-for-bit reproducible against it. Run is
// Drive with no cancellation and no observer; see driver.go for the loop.
func (f *Fleet) Run(execBudget int) {
	if execBudget <= 0 {
		return // a zero Budget.Execs would mean "unbounded", not "spent"
	}
	f.Drive(nil, Budget{Execs: execBudget}, nil)
}

// RunUntil fuzzes until the wall-clock deadline, checking it inside each
// worker's loop: a worker stops within one engine iteration of the deadline
// instead of finishing out a fixed merge window, so duration-budgeted
// campaigns land on their budget tightly. In multi-worker mode every worker
// performs a final sync before returning; the single-worker path never
// syncs (matching Run), which is why Stats, Corpus and Crashes read the
// lone engine directly rather than the shared state.
func (f *Fleet) RunUntil(deadline time.Time) {
	if deadline.IsZero() {
		return // a zero Budget.Deadline would mean "no deadline"
	}
	f.Drive(nil, Budget{Deadline: deadline}, nil)
}

// Stats aggregates the campaign snapshot across workers: execution and path
// counters are summed, coverage is the size of the merged union map, crash
// figures come from the merged bank, and the corpus size is the shared
// corpus after folding every worker in. For a single-worker fleet it is
// exactly the engine's snapshot.
//
// Summed Paths counts each worker's locally-valuable executions: a path two
// workers discover concurrently within one merge window is counted twice
// (after a sync the pull deduplicates future discoveries). Edges comes from
// the merged union and never double-counts — prefer it when comparing runs
// at different worker counts.
func (f *Fleet) Stats() Stats {
	// The single-worker shortcut reads the engine directly — but only
	// while the shared state is untouched. Once anything has been merged
	// in (a network hub's remote material, an explicit SyncAll), the
	// union path below is the truthful snapshot: an aggregator hub that
	// executes nothing itself must still report the fleet's edges,
	// corpus, and crashes.
	if len(f.workers) == 1 && f.state.empty() {
		return f.workers[0].Stats()
	}
	var s Stats
	for _, w := range f.workers {
		ws := w.stats
		s.Iterations += ws.Iterations
		s.Execs += ws.Execs
		s.Paths += ws.Paths
		s.SemanticExecs += ws.SemanticExecs
		s.SemanticPaths += ws.SemanticPaths
		s.Sequences += ws.Sequences
		s.TargetRestarts += w.execRestarts()
	}
	for _, w := range f.workers {
		if w.sess == nil {
			continue
		}
		// Element-wise merge over the shared StateModel order; states
		// reached is the union (a state any worker exercised is reached).
		sc := w.sess.stateCoverage()
		if s.StateCoverage == nil {
			s.StateCoverage = sc
		} else {
			for j := range sc {
				s.StateCoverage[j].Sent += sc[j].Sent
				s.StateCoverage[j].Edges += sc[j].Edges
			}
		}
		so := w.sess.seqOpStats()
		if s.SeqOpStats == nil {
			s.SeqOpStats = so
		} else {
			for j := range so {
				s.SeqOpStats[j].Trials += so[j].Trials
				s.SeqOpStats[j].Hits += so[j].Hits
			}
		}
	}
	for j := range s.StateCoverage {
		if s.StateCoverage[j].Sent > 0 {
			s.StatesReached++
		}
	}
	if f.Adaptive() {
		for _, w := range f.workers {
			if !w.sched.on {
				continue
			}
			s.Distills += w.sched.distills
			ms := w.mutatorStats()
			if s.MutatorStats == nil {
				s.MutatorStats = ms
				continue
			}
			for j := range ms {
				s.MutatorStats[j].Trials += ms[j].Trials
				s.MutatorStats[j].Hits += ms[j].Hits
			}
		}
	}
	st := f.state
	st.mu.Lock()
	for _, w := range f.workers {
		st.virgin.MergeVirgin(w.virgin.v)
		st.corp.MergeFrom(w.corp)
	}
	s.Edges = st.virgin.Edges()
	s.CorpusPuzzles = st.corp.Len()
	st.mu.Unlock()
	bank := f.Crashes()
	s.UniqueCrashes = bank.Unique()
	s.Hangs = bank.Hangs()
	return s
}

// Crashes merges the workers' crash banks — plus any records that arrived
// from remote fleet nodes via the shared state — into one campaign-level
// bank, deduplicating faults found by several workers. A fresh bank is
// built per call so repeated snapshots never double-count. Remote records
// are folded with Absorb (idempotent max-count merge), so a local fault
// echoed back by a hub never inflates its own count.
func (f *Fleet) Crashes() *crash.Bank {
	if len(f.workers) == 1 {
		remote := f.state.CrashRecords()
		if len(remote) == 0 {
			return f.workers[0].Crashes()
		}
		bank := crash.NewBank()
		bank.MergeFrom(f.workers[0].crashes)
		for _, r := range remote {
			bank.Absorb(r)
		}
		return bank
	}
	bank := crash.NewBank()
	for _, w := range f.workers {
		bank.MergeFrom(w.crashes)
	}
	for _, r := range f.state.CrashRecords() {
		bank.Absorb(r)
	}
	return bank
}

// Corpus returns the shared campaign corpus after folding in every worker's
// local puzzles.
func (f *Fleet) Corpus() *corpus.Corpus {
	if len(f.workers) == 1 && f.state.CorpusLen() == 0 {
		return f.workers[0].Corpus()
	}
	st := f.state
	st.mu.Lock()
	for _, w := range f.workers {
		st.corp.MergeFrom(w.corp)
	}
	st.mu.Unlock()
	return st.corp
}
