package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/rng"
	"repro/internal/sandbox"
)

// This file implements the sharded campaign runner: one fuzzing campaign
// split across N worker engines. Each worker owns the full serial machinery
// — its own RNG stream (split from the campaign seed), its own target
// instance and sandbox, its own coverage accumulator, puzzle corpus and
// crash bank — and runs the unmodified serial loop. Workers meet only at
// coarse-grained sync points: every MergeEvery executions a worker publishes
// its coverage and puzzles into the shared campaign state and folds the
// other workers' discoveries back out, all under one mutex. Between syncs
// there is no shared mutable state at all, so the hot loop is exactly the
// serial hot loop.

// DefaultMergeEvery is the default number of per-worker executions between
// synchronizations with the shared campaign state. Small enough that
// cross-worker donation (a puzzle cracked on worker A donated by worker B)
// happens many times per campaign, large enough that the mutex is cold.
const DefaultMergeEvery = 256

// ParallelConfig parameterizes a Fleet beyond the per-engine Config.
type ParallelConfig struct {
	// Workers is the number of worker engines; 0 and 1 both mean serial.
	Workers int
	// NewTarget constructs a fresh target instance for each worker beyond
	// the first (which uses Config.Target). Required when Workers > 1:
	// targets are stateful servers and must not be shared across
	// goroutines.
	NewTarget func() sandbox.Target
	// MergeEvery is the per-worker execution count between shared-state
	// syncs (0 = DefaultMergeEvery).
	MergeEvery int
}

// Fleet is one fuzzing campaign sharded across parallel worker engines. A
// single-worker Fleet is bit-for-bit identical to the serial Engine with the
// same Config: worker 0 keeps the campaign seed (rng.Split stream 0) and the
// single-worker Run path performs no sync operations.
//
// Run blocks until the budget is spent; Stats, Crashes and Corpus must not
// be called concurrently with Run.
type Fleet struct {
	workers []*Engine
	merge   int

	// Shared campaign state, guarded by mu. Workers touch it only at sync
	// points; everything else they own privately.
	mu     sync.Mutex
	virgin *coverage.Virgin // union of all workers' observed coverage
	corp   *corpus.Corpus   // union of all workers' puzzle corpora
	// marks holds each worker's journal positions: how much of the
	// worker's corpus journal has been pushed into the shared corpus, and
	// how much of the shared journal has been pulled back out. Deltas make
	// a sync window O(puzzles found since the last window), not O(corpus).
	marks []syncMark
}

// syncMark is one worker's read positions into the two corpus journals.
type syncMark struct {
	pushed int // into the worker's own journal
	pulled int // into the shared corpus's journal
}

// NewFleet validates the configuration and builds the worker engines.
// Worker i fuzzes with seed rng.Split(cfg.Seed, i); models are shared across
// workers (chunks are immutable once built), targets are not.
func NewFleet(cfg Config, pcfg ParallelConfig) (*Fleet, error) {
	workers := pcfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && pcfg.NewTarget == nil {
		return nil, fmt.Errorf("core: ParallelConfig.NewTarget is required for %d workers", workers)
	}
	merge := pcfg.MergeEvery
	if merge <= 0 {
		merge = DefaultMergeEvery
	}
	f := &Fleet{
		merge:  merge,
		virgin: coverage.NewVirgin(),
		corp:   corpus.New(cfg.CorpusPerSig),
	}
	for i := 0; i < workers; i++ {
		wcfg := cfg
		wcfg.Seed = rng.Split(cfg.Seed, i)
		if i > 0 {
			wcfg.Target = pcfg.NewTarget()
		}
		eng, err := New(wcfg)
		if err != nil {
			return nil, err
		}
		f.workers = append(f.workers, eng)
	}
	f.marks = make([]syncMark, len(f.workers))
	return f, nil
}

// Workers returns the fleet's parallelism.
func (f *Fleet) Workers() int { return len(f.workers) }

// Execs returns the total executions performed so far — the budget
// arithmetic accessor. Unlike Stats it merges nothing, so driving loops can
// call it every slice without touching the shared state.
func (f *Fleet) Execs() int {
	total := 0
	for _, w := range f.workers {
		total += w.stats.Execs
	}
	return total
}

// Step performs one iteration on worker 0 and returns how many executions it
// spent — the fine-grained sampling hook the harness uses. For multi-worker
// fleets it advances only worker 0; use Run to drive the whole fleet.
func (f *Fleet) Step() int { return f.workers[0].Step() }

// Run fuzzes until at least execBudget total executions have been performed,
// sharding the remaining budget evenly across the workers. It may be called
// repeatedly to extend a campaign. With one worker it is the serial
// Engine.Run, sync-free and bit-for-bit reproducible against it.
func (f *Fleet) Run(execBudget int) {
	if len(f.workers) == 1 {
		f.workers[0].Run(execBudget)
		return
	}
	remaining := execBudget - f.Execs()
	if remaining <= 0 {
		return
	}
	n := len(f.workers)
	var wg sync.WaitGroup
	for i, w := range f.workers {
		shard := remaining / n
		if i < remaining%n {
			shard++
		}
		if shard == 0 {
			continue
		}
		wg.Add(1)
		go func(w *Engine, i, target int) {
			defer wg.Done()
			f.runWorker(w, i, target)
		}(w, i, w.stats.Execs+shard)
	}
	wg.Wait()
}

// RunUntil fuzzes until the wall-clock deadline, checking it inside each
// worker's loop: a worker stops within one engine iteration of the deadline
// instead of finishing out a fixed merge window, so duration-budgeted
// campaigns land on their budget tightly. In multi-worker mode every worker
// performs a final sync before returning; the single-worker path never
// syncs (matching Run), which is why Stats, Corpus and Crashes read the
// lone engine directly rather than the shared state.
func (f *Fleet) RunUntil(deadline time.Time) {
	if len(f.workers) == 1 {
		w := f.workers[0]
		for time.Now().Before(deadline) {
			w.Step()
		}
		return
	}
	var wg sync.WaitGroup
	for i, w := range f.workers {
		wg.Add(1)
		go func(w *Engine, i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				window := w.stats.Execs + f.merge
				for w.stats.Execs < window && time.Now().Before(deadline) {
					w.Step()
				}
				f.sync(w, i)
			}
		}(w, i)
	}
	wg.Wait()
}

// runWorker drives one engine to its exec target, pausing every merge window
// to exchange state with the rest of the fleet.
func (f *Fleet) runWorker(w *Engine, i, target int) {
	for w.stats.Execs < target {
		window := w.stats.Execs + f.merge
		if window > target {
			window = target
		}
		for w.stats.Execs < window {
			w.Step()
		}
		f.sync(w, i)
	}
}

// sync is the batched merge: publish this worker's coverage and puzzles into
// the shared state, then fold the shared state back into the worker. The
// pull half is what makes sharding more than N independent campaigns — a
// worker stops re-counting paths the fleet has already found (so cracking
// effort is not duplicated) and gains donor material cracked by its peers.
// Corpus exchange is journal-delta based: each direction replays only the
// puzzles accepted since this worker's previous window (the worker's pull
// also skips its own just-pushed entries via dedup), so a window costs
// O(new puzzles), not O(corpus).
func (f *Fleet) sync(w *Engine, i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.virgin.MergeVirgin(w.virgin.v)
	w.virgin.v.MergeVirgin(f.virgin)
	m := &f.marks[i]
	_, m.pushed = f.corp.MergeJournal(w.corp, m.pushed)
	_, m.pulled = w.corp.MergeJournal(f.corp, m.pulled)
}

// Stats aggregates the campaign snapshot across workers: execution and path
// counters are summed, coverage is the size of the merged union map, crash
// figures come from the merged bank, and the corpus size is the shared
// corpus after folding every worker in. For a single-worker fleet it is
// exactly the engine's snapshot.
//
// Summed Paths counts each worker's locally-valuable executions: a path two
// workers discover concurrently within one merge window is counted twice
// (after a sync the pull deduplicates future discoveries). Edges comes from
// the merged union and never double-counts — prefer it when comparing runs
// at different worker counts.
func (f *Fleet) Stats() Stats {
	if len(f.workers) == 1 {
		return f.workers[0].Stats()
	}
	var s Stats
	for _, w := range f.workers {
		ws := w.stats
		s.Iterations += ws.Iterations
		s.Execs += ws.Execs
		s.Paths += ws.Paths
		s.SemanticExecs += ws.SemanticExecs
		s.SemanticPaths += ws.SemanticPaths
	}
	f.mu.Lock()
	for _, w := range f.workers {
		f.virgin.MergeVirgin(w.virgin.v)
		f.corp.MergeFrom(w.corp)
	}
	s.Edges = f.virgin.Edges()
	s.CorpusPuzzles = f.corp.Len()
	f.mu.Unlock()
	bank := f.Crashes()
	s.UniqueCrashes = bank.Unique()
	s.Hangs = bank.Hangs()
	return s
}

// Crashes merges the workers' crash banks into one campaign-level bank,
// deduplicating faults found by several workers. A fresh bank is built per
// call so repeated snapshots never double-count.
func (f *Fleet) Crashes() *crash.Bank {
	if len(f.workers) == 1 {
		return f.workers[0].Crashes()
	}
	bank := crash.NewBank()
	for _, w := range f.workers {
		bank.MergeFrom(w.crashes)
	}
	return bank
}

// Corpus returns the shared campaign corpus after folding in every worker's
// local puzzles.
func (f *Fleet) Corpus() *corpus.Corpus {
	if len(f.workers) == 1 {
		return f.workers[0].Corpus()
	}
	f.mu.Lock()
	for _, w := range f.workers {
		f.corp.MergeFrom(w.corp)
	}
	f.mu.Unlock()
	return f.corp
}
