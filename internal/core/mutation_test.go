package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func newMutEngine(t *testing.T, strat Strategy, seed uint64) *Engine {
	t.Helper()
	e, err := New(Config{
		Models:   toyModels(),
		Target:   newToyTarget(),
		Strategy: strat,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMutationStrategyNames(t *testing.T) {
	if StrategyMutation.String() != "MutFuzz" || StrategyMutationStar.String() != "MutFuzz*" {
		t.Fatalf("names: %s / %s", StrategyMutation, StrategyMutationStar)
	}
}

func TestMutationFindsPaths(t *testing.T) {
	e := newMutEngine(t, StrategyMutation, 1)
	e.Run(800)
	if e.Stats().Paths == 0 {
		t.Fatal("byte-level fuzzer found no paths")
	}
	if !e.Corpus().Empty() {
		t.Fatal("plain mutation strategy must not crack seeds")
	}
}

func TestMutationStarBuildsCorpus(t *testing.T) {
	e := newMutEngine(t, StrategyMutationStar, 2)
	e.Run(1500)
	if e.Corpus().Empty() {
		t.Fatal("mutation* should crack valuable seeds into puzzles")
	}
}

func TestMutationQueueSeededFromModels(t *testing.T) {
	e := newMutEngine(t, StrategyMutation, 3)
	e.Step()
	if len(e.mut.queue) < len(toyModels()) {
		t.Fatalf("queue = %d entries", len(e.mut.queue))
	}
}

func TestMutationQueueBounded(t *testing.T) {
	e := newMutEngine(t, StrategyMutation, 4)
	for i := 0; i < mutationQueueBound+64; i++ {
		e.mutationRetain([]byte{byte(i)})
	}
	if len(e.mut.queue) > mutationQueueBound {
		t.Fatalf("queue grew to %d", len(e.mut.queue))
	}
}

func TestHavocAlwaysChangesOrKeepsValid(t *testing.T) {
	r := rng.New(5)
	base := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	changed := 0
	for i := 0; i < 200; i++ {
		out := havoc(r, base)
		if !bytes.Equal(out, base) {
			changed++
		}
		if len(out) == 0 && len(base) > 0 {
			// deletion can shrink but the empty case is rare and
			// legal; just make sure the next op recovers
			continue
		}
	}
	if changed < 150 {
		t.Fatalf("havoc changed only %d/200", changed)
	}
	// base must never be modified in place.
	if !bytes.Equal(base, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("havoc mutated the base seed")
	}
}

func TestHavocEmptyBase(t *testing.T) {
	r := rng.New(6)
	out := havoc(r, nil)
	if len(out) == 0 {
		t.Fatal("havoc on empty base should synthesize bytes")
	}
}

func TestChunkAwareMutateProducesLegalPackets(t *testing.T) {
	e := newMutEngine(t, StrategyMutationStar, 7)
	e.Run(2000)
	if e.Corpus().Empty() {
		t.Skip("corpus did not populate under this seed")
	}
	base := toyModels()[0].Generate().Bytes()
	got, ok := e.chunkAwareMutate(base)
	if !ok {
		t.Skip("no donor fit this base")
	}
	// The donated packet must crack against its model: fixups repaired.
	if _, err := toyModels()[0].Crack(got); err != nil {
		t.Fatalf("chunk-aware mutation produced an illegal packet: %v", err)
	}
}

func TestMutationStarAtLeastMatchesMutation(t *testing.T) {
	// The future-work claim shape: chunk-aware donation should not hurt
	// the byte-level fuzzer on structured targets.
	var plain, star int
	for seed := uint64(0); seed < 3; seed++ {
		a := newMutEngine(t, StrategyMutation, seed)
		a.Run(2000)
		b := newMutEngine(t, StrategyMutationStar, seed)
		b.Run(2000)
		plain += a.Stats().Paths
		star += b.Stats().Paths
	}
	if float64(star) < 0.8*float64(plain) {
		t.Fatalf("mutation* paths %d collapsed versus mutation %d", star, plain)
	}
}

func TestMutationDeterministic(t *testing.T) {
	a := newMutEngine(t, StrategyMutationStar, 9)
	b := newMutEngine(t, StrategyMutationStar, 9)
	a.Run(600)
	b.Run(600)
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("campaigns diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
