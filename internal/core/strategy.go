package core

import (
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/rng"
)

// virginState wraps the campaign coverage accumulator so the engine file
// stays strategy-focused.
type virginState struct {
	v *coverage.Virgin
}

func newVirginState() *virginState { return &virginState{v: coverage.NewVirgin()} }

func (s *virginState) Merge(raw []byte) bool               { return s.v.Merge(raw) }
func (s *virginState) MergeTracer(t *coverage.Tracer) bool { return s.v.MergeTracer(t) }
func (s *virginState) Edges() int                          { return s.v.Edges() }

// render serializes the working instance into an arena-backed buffer
// pre-sized by Len — the zero-allocation JOINT. The seed lives until the
// next arena reset (the following generation round); every consumer that
// retains longer (crash bank, corpus, mutation queue) copies.
func (e *Engine) render(inst *datamodel.Node) []byte {
	return inst.AppendTo(e.arena.Buffer(inst.Len()))
}

// baselineGenerate implements Algorithm 1's per-iteration body for one
// model: ANALYZE the chunks, GENERATE with Peach's inherent mutators, JOINT
// in declared order. Like Peach, one test case perturbs a small number of
// elements — usually one — while the rest keep their model values; that is
// what lets generation-based fuzzing carry packets past framing and
// integrity validation (§I). Relations and fixups are re-established on
// output, with a small probability of being left stale, matching Peach
// mutators that target integrity fields themselves.
func (e *Engine) baselineGenerate(m *datamodel.Model) []byte {
	inst := e.skeleton(m)
	e.leaves = inst.Leaves(e.leaves[:0])
	// Mutate 1..3 leaves, geometrically biased toward 1.
	k := 1
	for k < 3 && e.r.Chance(3) {
		k++
	}
	for ; k > 0; k-- {
		e.mutateLeaf(rng.Pick(e.r, e.leaves))
	}
	if !e.r.Chance(8) {
		m.ApplyFixups(inst)
	}
	return e.render(inst)
}

// skeleton picks the structural starting point for generation: the default
// instance, occasionally a structurally randomized one (random choice
// alternatives, array counts, field draws), or — once feedback has
// retained some — a coverage-selected valuable instance of this model
// ("mutation on existing chunks", §II, guided by §IV-B's feedback). All
// skeletons are arena-backed: they live exactly one generation round.
func (e *Engine) skeleton(m *datamodel.Model) *datamodel.Node {
	if q := e.valuable[m.Name]; len(q) > 0 && e.r.Chance(4) {
		return e.pickValuable(q).CloneInto(&e.arena)
	}
	if e.r.Chance(8) {
		return m.GenerateRandomInto(&e.arena, e.r)
	}
	return m.GenerateInto(&e.arena)
}

// mutateLeaf rewrites one leaf's bytes with a selected applicable mutator —
// uniform by default, yield-weighted under the adaptive scheduler (see
// pickMutator). The new bytes come from the engine arena and live exactly
// as long as the instance tree they are written into — one generation
// round.
func (e *Engine) mutateLeaf(leaf *datamodel.Node) {
	mut := e.pickMutator(leaf.Chunk)
	if mut == nil {
		return
	}
	leaf.Data = mut.Mutate(e.r, leaf.Chunk, leaf.Data, &e.arena)
}

// semanticGenerate implements Algorithm 3: construct a batch of seeds for
// model m by filling each chunk position with donor puzzles from the
// corpus where available and with the inherent rule otherwise, then apply
// File Fixup (§IV-D). The donor cartesian product is enumerated up to
// MaxBatch seeds (the paper's p×q enumeration, bounded). The batch is
// appended to e.pending.
func (e *Engine) semanticGenerate(m *datamodel.Model) {
	// Donor recombination starts from a structurally sound base: the
	// default instance or a coverage-selected valuable one — never the
	// fully randomized skeleton, whose scrambled framing would waste the
	// whole batch.
	skeleton := m.GenerateInto(&e.arena)
	if q := e.valuable[m.Name]; len(q) > 0 && e.r.Bool() {
		skeleton = e.pickValuable(q).CloneInto(&e.arena)
	}
	e.leaves = skeleton.Leaves(e.leaves[:0])
	leaves := e.leaves

	// Candidate donors per position (GETDONOR, Algorithm 3 line 10). The
	// cross-model filter writes into engine-owned per-position scratch
	// (donorScr), the same pattern as e.cands itself, so semantic rounds
	// allocate nothing here in steady state.
	e.cands = e.cands[:0]
	for len(e.donorScr) < len(leaves) {
		e.donorScr = append(e.donorScr, nil)
	}
	anyDonor := false
	for i, leaf := range leaves {
		var donors []corpus.Puzzle
		if e.cfg.DisableCrossModel {
			donors = e.corp.Donors(leaf.Chunk)
		} else {
			donors, e.donorScr[i] = e.corp.CrossModelDonorsInto(e.donorScr[i], leaf.Chunk, m.Name)
		}
		e.cands = append(e.cands, donors)
		if len(donors) > 0 {
			anyDonor = true
		}
	}
	if !anyDonor {
		return
	}
	candidates := e.cands

	// The donor cartesian product (Algorithm 3's p×q) is materialized
	// exactly while it stays small; past MaxBatch it is sampled instead.
	// Unbounded enumeration would flood the execution budget with
	// near-duplicate packets and starve exploration — the opposite of
	// the paper's intent of "ruling out meaningless repetitions".
	product := 1
	for _, donors := range candidates {
		n := len(donors)
		if n == 0 {
			n = 1 // inherent rule counts as one candidate (§IV-D)
		}
		product *= n + 1 // +1: the skeleton's own content
		if product > e.cfg.MaxBatch {
			break
		}
	}
	clear(e.dedup)
	if product <= e.cfg.MaxBatch {
		e.enumerateBatch(m, skeleton, leaves, candidates)
	} else {
		e.sampleBatch(m, skeleton, leaves, candidates)
	}
}

// enumerateBatch is the literal recursion of Algorithm 3: every candidate
// combination becomes one seed. The skeleton's own content participates as
// one candidate per position, so fresh chunks mix with donated ones. Donor
// bytes are aliased, not copied, into the working tree: puzzles are
// immutable once stored and the fixup pass never writes through a donatable
// leaf (Donatable excludes relation/fixup/token chunks), so the alias is
// read-only for its whole lifetime.
func (e *Engine) enumerateBatch(m *datamodel.Model, skeleton *datamodel.Node, leaves []*datamodel.Node, candidates [][]corpus.Puzzle) {
	var construct func(pos int)
	construct = func(pos int) {
		if len(e.pending) >= e.cfg.MaxBatch {
			return
		}
		if pos == len(leaves) { // EQUAL(CurPos, Size+1)
			e.appendSeed(m, skeleton)
			return
		}
		leaf := leaves[pos]
		saved := leaf.Data
		construct(pos + 1) // skeleton's own content
		for _, donor := range candidates[pos] {
			if len(e.pending) >= e.cfg.MaxBatch {
				break
			}
			leaf.Data = donor.Data
			construct(pos + 1)
		}
		leaf.Data = saved
	}
	construct(0)
}

// sampleBatch draws sampleBatchSize independent points from the product
// space: each donor-eligible position takes a random donor with
// probability 1/2 (occasionally mutated), otherwise keeps the skeleton's
// content. Batches stay small and diverse.
const sampleBatchSize = 3

func (e *Engine) sampleBatch(m *datamodel.Model, skeleton *datamodel.Node, leaves []*datamodel.Node, candidates [][]corpus.Puzzle) {
	for k := 0; k < sampleBatchSize && len(e.pending) < e.cfg.MaxBatch; k++ {
		e.saved = e.saved[:0]
		for i, leaf := range leaves {
			e.saved = append(e.saved, leaf.Data)
			donors := candidates[i]
			if len(donors) == 0 || e.r.Bool() {
				continue
			}
			leaf.Data = rng.Pick(e.r, donors).Data
			// A light mutation on top of a donor probes the
			// neighbourhood of known-good content.
			if e.r.Chance(8) {
				e.mutateLeaf(leaf)
			}
		}
		e.appendSeed(m, skeleton)
		for i, leaf := range leaves {
			leaf.Data = e.saved[i]
		}
	}
}

// appendSeed finishes the working instance and appends it to the pending
// batch unless the batch already contains an identical packet. The
// map[string]bool lookup over string(seed) does not allocate; only genuinely
// new seeds pay for a key.
func (e *Engine) appendSeed(m *datamodel.Model, inst *datamodel.Node) {
	seed := e.finishSeed(m, inst)
	if e.dedup[string(seed)] {
		return
	}
	e.dedup[string(seed)] = true
	e.pending = append(e.pending, seed)
}

// finishSeed renders the working instance to bytes, applying File Fixup
// unless ablated: donated chunks may have changed sizes, so size-of fields
// and checksums must be re-established for the packet to stay legal.
func (e *Engine) finishSeed(m *datamodel.Model, inst *datamodel.Node) []byte {
	if !e.cfg.DisableFixup {
		m.ApplyFixups(inst)
	}
	return e.render(inst)
}
