package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mem"
	"repro/internal/sandbox"
	"repro/internal/session"
)

// toySessionTarget is a minimal stateful protocol for the session loop:
//
//	Start (0x5A)  activates the session
//	Data  (0x44)  is counted while activated
//	Boom  (0x66)  crashes after two counted Data messages
//
// The fault is reachable only through a 4-message prefix on one session:
// the engine's in-process session reset (BeginSession -> ResetSession)
// clears the gate at every sequence boundary.
type toySessionTarget struct {
	ids      []coverage.BlockID
	started  bool
	accepted int
}

func newToySessionTarget() *toySessionTarget {
	return &toySessionTarget{ids: coverage.Blocks("toysess", 16)}
}

func (tt *toySessionTarget) ResetSession() { tt.started = false; tt.accepted = 0 }

func (tt *toySessionTarget) Handle(tr *coverage.Tracer, pkt []byte) {
	tr.Hit(tt.ids[0])
	if len(pkt) < 1 {
		tr.Hit(tt.ids[1])
		return
	}
	switch pkt[0] {
	case 0x5A:
		tr.Hit(tt.ids[2])
		tt.started = true
		tt.accepted = 0
	case 0x44:
		if !tt.started {
			tr.Hit(tt.ids[3])
			return
		}
		tr.Hit(tt.ids[4])
		if len(pkt) >= 2 && pkt[1]&1 == 1 {
			tr.Hit(tt.ids[5])
		}
		tt.accepted++
	case 0x66:
		if tt.started && tt.accepted >= 2 {
			panic(&mem.Fault{Kind: mem.SEGV, Site: "toysess.deep"})
		}
		tr.Hit(tt.ids[6])
	default:
		tr.Hit(tt.ids[7])
	}
}

func toySessionModels() []*datamodel.Model {
	return []*datamodel.Model{
		datamodel.NewModel("Start", datamodel.Num("op", 1, 0x5A).AsToken()),
		datamodel.NewModel("Data",
			datamodel.Num("op", 1, 0x44).AsToken(),
			datamodel.BytesVar("payload", 1, 8, []byte{0x01}),
		),
		datamodel.NewModel("Boom", datamodel.Num("op", 1, 0x66).AsToken()),
	}
}

func toyStateModel() *session.StateModel {
	return &session.StateModel{
		Name:    "ToySession",
		Initial: 0,
		States: []session.State{
			{Name: "idle", Actions: []session.Action{
				{Model: "Start", Next: 1},
			}},
			{Name: "active", Actions: []session.Action{
				{Model: "Data", Next: 1},
				{Model: "Boom", Next: 1},
			}},
		},
	}
}

func newSessionEngine(t *testing.T, seed uint64, adaptive bool) *Engine {
	t.Helper()
	e, err := New(Config{
		Models:   toySessionModels(),
		Target:   newToySessionTarget(),
		Strategy: StrategyPeachStar,
		Seed:     seed,
		Session:  toyStateModel(),
		Adaptive: adaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSessionConfigValidation(t *testing.T) {
	bad := toyStateModel()
	bad.States[1].Actions[0].Model = "NoSuchModel"
	_, err := New(Config{
		Models:   toySessionModels(),
		Target:   newToySessionTarget(),
		Strategy: StrategyPeachStar,
		Seed:     1,
		Session:  bad,
	})
	if err == nil {
		t.Fatal("action naming an unknown data model should fail New")
	}
	_, err = New(Config{
		Models:   toySessionModels(),
		Target:   newToySessionTarget(),
		Strategy: StrategyPeachStar,
		Seed:     1,
		Session:  &session.StateModel{Name: "empty"},
	})
	if err == nil {
		t.Fatal("invalid state model should fail New")
	}
}

// TestSessionEngineFindsDeepFault: the session loop reaches the fault
// gated behind a 4-message stateful prefix, and the record carries the
// whole sequence with its session boundary.
func TestSessionEngineFindsDeepFault(t *testing.T) {
	e := newSessionEngine(t, 1, false)
	e.Run(20000)
	s := e.Stats()
	if s.UniqueCrashes == 0 {
		t.Fatal("session campaign did not reach the deep-state fault")
	}
	recs := e.Crashes().Records()
	found := false
	for _, r := range recs {
		if r.Site != "toysess.deep" {
			continue
		}
		found = true
		if len(r.Sequence) < 4 {
			t.Fatalf("deep fault reproducer has %d steps, want >= 4 (Start + 2 Data + Boom)", len(r.Sequence))
		}
		if len(r.SeqStarts) != 1 || r.SeqStarts[0] != 0 {
			t.Fatalf("SeqStarts = %v, want [0]", r.SeqStarts)
		}
	}
	if !found {
		t.Fatalf("no record for toysess.deep; records: %+v", recs)
	}
	if s.Sequences == 0 {
		t.Fatal("Stats.Sequences = 0")
	}
	if s.StatesReached != 2 {
		t.Fatalf("StatesReached = %d, want 2", s.StatesReached)
	}
	var sent uint64
	for _, sc := range s.StateCoverage {
		sent += sc.Sent
	}
	if sent != uint64(s.Execs) {
		t.Fatalf("sum of StateCoverage.Sent = %d, want Execs = %d", sent, s.Execs)
	}
	if s.StateCoverage[1].Edges == 0 {
		t.Fatal("no edges attributed to the active state")
	}
	var opTrials uint64
	for _, op := range s.SeqOpStats {
		opTrials += op.Trials
	}
	if opTrials == 0 {
		t.Fatal("no sequence-operator trials recorded")
	}
}

// TestSessionDeterminism: equal seeds give equal session campaigns —
// stats, crash records, and retained corpus all match.
func TestSessionDeterminism(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		a := newSessionEngine(t, 7, adaptive)
		b := newSessionEngine(t, 7, adaptive)
		a.Run(5000)
		b.Run(5000)
		sa, sb := a.Stats(), b.Stats()
		if sa.Iterations != sb.Iterations || sa.Execs != sb.Execs || sa.Paths != sb.Paths ||
			sa.Edges != sb.Edges || sa.Sequences != sb.Sequences ||
			sa.UniqueCrashes != sb.UniqueCrashes || sa.CorpusPuzzles != sb.CorpusPuzzles {
			t.Fatalf("adaptive=%v: diverged:\n%+v\n%+v", adaptive, sa, sb)
		}
		ra, rb := a.Crashes().Records(), b.Crashes().Records()
		if len(ra) != len(rb) {
			t.Fatalf("adaptive=%v: crash records diverged: %d vs %d", adaptive, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].Site != rb[i].Site || ra[i].FirstExec != rb[i].FirstExec {
				t.Fatalf("adaptive=%v: record %d diverged", adaptive, i)
			}
		}
	}
}

// TestSessionSequencesEnterCorpus: retained valuable sequences are
// published to the corpus under the reserved namespace, decode cleanly,
// and are legal walks — the material fleet sync ships to peers.
func TestSessionSequencesEnterCorpus(t *testing.T) {
	e := newSessionEngine(t, 3, false)
	e.Run(5000)
	sm := toyStateModel()
	pool := e.Corpus().Sequences(sm.Name)
	if len(pool) == 0 {
		t.Fatal("no sequences published to the corpus")
	}
	for _, p := range pool {
		seq, err := session.Decode(p.Data)
		if err != nil {
			t.Fatalf("corpus sequence does not decode: %v", err)
		}
		if err := sm.Valid(seq); err != nil {
			t.Fatalf("corpus sequence is not a legal walk: %v", err)
		}
		if !corpus.IsSeqSignature(p.Signature) {
			t.Fatalf("sequence stored under non-reserved signature %q", p.Signature)
		}
	}
	// Donor lists never surface sequence entries (namespace isolation).
	for _, m := range toySessionModels() {
		for _, leaf := range m.GenerateInto(&datamodel.Arena{}).Leaves(nil) {
			for _, d := range e.Corpus().Donors(leaf.Chunk) {
				if corpus.IsSeqSignature(d.Signature) {
					t.Fatal("sequence entry leaked into donor list")
				}
			}
		}
	}
}

// TestSessionFleetStats: the fleet snapshot merges session counters
// element-wise across workers.
func TestSessionFleetStats(t *testing.T) {
	f, err := NewFleet(Config{
		Models:   toySessionModels(),
		Target:   newToySessionTarget(),
		Strategy: StrategyPeachStar,
		Seed:     11,
		Session:  toyStateModel(),
	}, ParallelConfig{
		Workers:   2,
		NewTarget: func() sandbox.Target { return newToySessionTarget() },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Run(4000)
	s := f.Stats()
	if s.Sequences == 0 {
		t.Fatal("fleet Sequences = 0")
	}
	if s.StatesReached != 2 {
		t.Fatalf("fleet StatesReached = %d, want 2", s.StatesReached)
	}
	var sent uint64
	for _, sc := range s.StateCoverage {
		sent += sc.Sent
	}
	if sent != uint64(s.Execs) {
		t.Fatalf("fleet sum of Sent = %d, want Execs = %d", sent, s.Execs)
	}
	approx := f.StatsApprox()
	if approx.Sequences == 0 || approx.StatesReached == 0 {
		t.Fatalf("StatsApprox session counters empty: %+v", approx)
	}
}
