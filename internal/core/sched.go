package core

import (
	"sort"

	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mutator"
)

// This file is the adaptive scheduler (Config.Adaptive): the feedback loop
// that moves the engine's execution budget toward whatever is currently
// paying off. Three mechanisms, all off by default and all bit-for-bit
// inert when disabled:
//
//  1. Operator scheduling (MOpt/AFL++-shaped): every mutator application is
//     a trial credited to its (model, mutator) cell; when the execution it
//     fed reaches a new program state — the existing Virgin.MergeTracer
//     decision in Engine.execute, which is exactly "a never-seen edge or
//     hit-bucket" — every mutator used in that generation round is credited
//     a hit. Per-model weights are recomputed from the smoothed yields
//     every schedRecalcEvery trials and fed into mutator.PickWeighted;
//     until a model has schedWarmupTrials trials its draw stays uniform,
//     and no operator ever drops below schedFloorWeight, so exploration
//     never starves.
//
//  2. Rarity-weighted seed selection: a coverage.HitCounts sidecar counts,
//     per edge, how many executions lit it; each retained valuable seed
//     carries the edge list of the trace that made it valuable, and
//     pickValuable draws seeds proportionally to the summed rarity of
//     their edges (refreshed every schedScoreEvery executions) instead of
//     the uniform depth tournament. Seeds touching edges the campaign
//     rarely reaches become the preferred mutation bases and semantic
//     skeletons.
//
//  3. Corpus distillation (afl-cmin-shaped): each cracked valuable seed is
//     tracked as a contributor — its edge set plus the corpus puzzles its
//     crack added. Every schedDistillEvery executions a greedy minimal
//     covering set over the contributors' edge sets is computed; puzzles
//     owned by contributors outside the cover are removed from the corpus,
//     shrinking the donor lists (and what journal full-replays ship) while
//     preserving the contributors' union edge set by construction.
//
// Interaction with eviction and sync (see also corpus.Remove): removal
// touches only the live store, never the acceptance journal or registered
// peer cursors, so incremental sync readers are unaffected; a removed
// entry replayed from a peer's journal is simply re-absorbed (and dedups
// on the second replay). Conversely a corpus eviction (the perSig bound)
// can race ahead of the tracker: a contributor may hold a ref to a puzzle
// eviction already removed, and its later Remove is then a harmless no-op.
//
// Determinism: the scheduler consumes engine RNG draws only inside
// PickWeighted and the weighted seed draw, both single-draw; everything
// else is pure integer/float arithmetic over deterministic counters, so an
// adaptive campaign is reproducible for a fixed seed. With Adaptive off no
// scheduler code touches the RNG and every draw site keeps its original
// call, so campaigns are bit-for-bit identical to pre-scheduler builds —
// pinned by the golden-stream and equivalence suites.

const (
	// schedWarmupTrials is the per-model trial count below which the
	// operator draw stays uniform — the MOpt pilot phase.
	schedWarmupTrials = 1024
	// schedRecalcEvery is the per-model trial count between weight
	// recomputations (weights are stable between recomputes, so the
	// per-application cost is one counter increment).
	schedRecalcEvery = 256
	// schedFloorWeight is the minimum operator weight: with span 240 the
	// coldest operator keeps ≥ 16/(16+240) ≈ 6% of the hottest's draw
	// probability, so a currently-cold operator can always come back.
	schedFloorWeight = 16
	// schedSpanWeight is the weight span scaled by relative smoothed
	// yield; the best operator of a model carries floor+span.
	schedSpanWeight = 240
	// schedYieldPrior is the smoothing prior of the yield estimate
	// (hits+1)/(trials+prior) — fresh operators read as mildly promising
	// rather than as exactly their tiny sample.
	schedYieldPrior = 32
	// schedDecayAtTrials halves a model's weighting counters once its
	// trials pass this, so weights track marginal yield, not the
	// campaign-long average (the same trick the semantic-share arm uses).
	schedDecayAtTrials = 1 << 13
	// schedScoreEvery is the execution cadence of rarity-score refreshes
	// for the valuable-seed queues.
	schedScoreEvery = 4096
	// schedDistillEvery is the execution cadence of corpus distillations.
	schedDistillEvery = 32768
	// schedMaxContributors forces a distillation when the tracked
	// contributor set outgrows it, bounding tracker memory on campaigns
	// that find valuable seeds faster than the cadence distills them.
	schedMaxContributors = 1024
	// schedMaxPendingDistills bounds the undelivered DistillInfo queue of
	// an engine nobody drains (a bare Engine.Run with no driver hook).
	schedMaxPendingDistills = 64
)

// MutatorStat is one operator's adaptive-scheduler accounting, aggregated
// over models: how many times it was applied and how many of the
// executions it fed reached a new program state. Lifetime totals —
// unlike the decayed counters that drive the live weights, these only
// grow, so deltas between snapshots are meaningful.
type MutatorStat struct {
	// Name is the operator's mutator.Mutator name.
	Name string
	// Trials is the number of applications of the operator.
	Trials uint64
	// Hits is the number of valuable executions credited to rounds that
	// used the operator.
	Hits uint64
}

// DistillInfo describes one corpus distillation: how many tracked source
// seeds the greedy cover kept, and what their pruning removed.
type DistillInfo struct {
	// Exec is the engine's execution count when the distillation ran.
	Exec int
	// SeedsKept and SeedsDropped partition the tracked contributor seeds:
	// kept seeds form the minimal covering set of the union edge set.
	SeedsKept    int
	SeedsDropped int
	// PuzzlesDropped is the number of corpus puzzles removed because
	// their source seed fell out of the cover.
	PuzzlesDropped int
	// Edges is the union edge-set size the cover preserves.
	Edges int
}

// puzzleRef identifies one corpus puzzle a contributor's crack added, by
// the removal key (rule signature + exact bytes).
type puzzleRef struct {
	sig  string
	data []byte
}

// contributor is one cracked valuable seed in the distillation tracker.
type contributor struct {
	edges   []uint16
	puzzles []puzzleRef
}

// scheduler is the engine-owned adaptive state. The zero value is the
// disabled scheduler; enable builds the counter tables.
type scheduler struct {
	on bool //peachstar:nosnap recorded by the Engine checkpoint envelope, not the scheduler codec

	// Operator accounting, [model][mutator]. trials/hits drive the
	// weights and decay; trialsAll/hitsAll are the monotonic reporting
	// counters behind Stats.MutatorStats.
	trials, hits       [][]uint32
	trialsAll, hitsAll [][]uint64
	weights            [][]uint32 // nil per model until past warmup → uniform
	recalcIn           []uint32
	totalTrials        []uint64
	//peachstar:nosnap recompute scratch, rewritten by every refresh
	yields []float64 // recompute scratch

	// curModel is the model of the generation round in flight; roundMuts
	// are the mutator indices applied while generating it — the credit
	// set if an execution of the round proves valuable.
	curModel  int   //peachstar:nosnap round-in-flight credit state; restore resets it
	roundMuts []int //peachstar:nosnap round-in-flight credit state; restore resets it

	// Rarity sidecar and refresh countdown.
	hitCounts *coverage.HitCounts
	scoreIn   int

	// Distillation tracker.
	contribs  []contributor
	distillIn int
	distills  int
	pending   []DistillInfo
}

// enableAdaptive switches the engine's adaptive scheduler on, sizing the
// accounting tables; idempotent. Must not be called while the engine is
// being driven.
func (e *Engine) enableAdaptive() {
	if e.sched.on {
		return
	}
	nm, nmut := len(e.cfg.Models), len(e.muts)
	s := &e.sched
	s.on = true
	s.trials = make([][]uint32, nm)
	s.hits = make([][]uint32, nm)
	s.trialsAll = make([][]uint64, nm)
	s.hitsAll = make([][]uint64, nm)
	s.weights = make([][]uint32, nm)
	s.recalcIn = make([]uint32, nm)
	s.totalTrials = make([]uint64, nm)
	s.yields = make([]float64, nmut)
	for i := 0; i < nm; i++ {
		s.trials[i] = make([]uint32, nmut)
		s.hits[i] = make([]uint32, nmut)
		s.trialsAll[i] = make([]uint64, nmut)
		s.hitsAll[i] = make([]uint64, nmut)
		s.recalcIn[i] = schedRecalcEvery
	}
	s.curModel = -1
	s.hitCounts = coverage.NewHitCounts()
	s.scoreIn = schedScoreEvery
	s.distillIn = schedDistillEvery
}

// Adaptive reports whether the adaptive scheduler is on.
func (e *Engine) Adaptive() bool { return e.sched.on }

// beginRound opens a generation round for model mi (-1 for rounds with no
// model, e.g. the byte-level mutation strategies): the round's mutator
// credit set starts empty.
func (s *scheduler) beginRound(mi int) {
	s.curModel = mi
	s.roundMuts = s.roundMuts[:0]
}

// recordTrial credits one application of mutator mut to the round's model
// and adds it to the round's credit set, recomputing the model's weights
// when the recompute countdown expires.
func (s *scheduler) recordTrial(mut int) {
	mi := s.curModel
	if mi < 0 {
		return
	}
	s.trials[mi][mut]++
	s.trialsAll[mi][mut]++
	s.totalTrials[mi]++
	s.roundMuts = append(s.roundMuts, mut)
	if s.recalcIn[mi] > 0 {
		s.recalcIn[mi]--
		return
	}
	s.recalcIn[mi] = schedRecalcEvery
	s.recompute(mi)
}

// recompute rebuilds model mi's operator weights from the smoothed yields:
// weight_i = floor + span · yield_i/max(yield), after halving the counters
// when the decay threshold is passed. During warmup the weights stay nil,
// which PickWeighted reads as a uniform draw.
func (s *scheduler) recompute(mi int) {
	if s.totalTrials[mi] < schedWarmupTrials {
		return
	}
	if s.totalTrials[mi] >= schedDecayAtTrials {
		var tot uint64
		for i := range s.trials[mi] {
			s.trials[mi][i] /= 2
			s.hits[mi][i] /= 2
			tot += uint64(s.trials[mi][i])
		}
		s.totalTrials[mi] = tot
	}
	maxY := 0.0
	for i := range s.yields {
		y := (float64(s.hits[mi][i]) + 1) / (float64(s.trials[mi][i]) + schedYieldPrior)
		s.yields[i] = y
		if y > maxY {
			maxY = y
		}
	}
	w := s.weights[mi]
	if w == nil {
		w = make([]uint32, len(s.yields))
		s.weights[mi] = w
	}
	for i, y := range s.yields {
		w[i] = schedFloorWeight + uint32(schedSpanWeight*y/maxY+0.5)
	}
}

// modelWeights returns the operator weights of the round's model (nil
// during warmup or for model-less rounds — the uniform draw).
func (s *scheduler) modelWeights() []uint32 {
	if s.curModel < 0 {
		return nil
	}
	return s.weights[s.curModel]
}

// observeExec is the scheduler's per-execution feedback step, called at
// the MergeTracer decision point of Engine.execute: accumulate the
// execution's footprint into the rarity counters, credit the round's
// operators when the execution proved valuable, and run the periodic
// refresh and distillation countdowns.
func (e *Engine) observeExec(valuable bool) {
	s := &e.sched
	s.hitCounts.AccumulateTracer(e.exec.Tracer())
	if valuable && s.curModel >= 0 {
		for _, mut := range s.roundMuts {
			s.hits[s.curModel][mut]++
			s.hitsAll[s.curModel][mut]++
		}
	}
	s.scoreIn--
	if s.scoreIn <= 0 {
		s.scoreIn = schedScoreEvery
		e.refreshScores()
	}
	s.distillIn--
	if s.distillIn <= 0 || len(s.contribs) >= schedMaxContributors {
		s.distillIn = schedDistillEvery
		e.distillCorpus()
	}
}

// refreshScores recomputes every retained valuable seed's rarity score
// from the current hit counters. Between refreshes the cached scores
// drift — acceptable: rarity orders change slowly, and the refresh keeps
// the per-pick cost at one cumulative scan of a ≤32-entry queue.
func (e *Engine) refreshScores() {
	names := make([]string, 0, len(e.valuable))
	for name := range e.valuable {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q := e.valuable[name]
		for i := range q {
			if len(q[i].edges) == 0 {
				// A seed retained before the sidecar existed (scheduler
				// enabled mid-campaign): keep it drawable, minimally.
				q[i].score = 1
				continue
			}
			q[i].score = e.sched.hitCounts.RarityScore(q[i].edges)
		}
	}
}

// pickValuableRare draws a retained seed proportionally to its cached
// rarity score, consuming exactly one RNG value. It returns nil when no
// scores have been computed yet (before the first refresh), and the
// caller falls back to the uniform depth tournament.
func (e *Engine) pickValuableRare(q []valuableSeed) *datamodel.Node {
	var total uint64
	for i := range q {
		total += q[i].score
	}
	if total == 0 {
		return nil
	}
	k := e.r.Uint64() % total
	for i := range q {
		if k < q[i].score {
			return q[i].ins
		}
		k -= q[i].score
	}
	return q[len(q)-1].ins // unreachable: k < total
}

// trackContributor registers one cracked valuable seed with the
// distillation tracker: the edge set of the trace that made it valuable
// plus the refs of the puzzles its crack added. Seeds whose crack added
// nothing (every puzzle deduplicated) own nothing the distiller could
// prune, so they are not tracked.
func (s *scheduler) trackContributor(edges []uint16, puzzles []puzzleRef) {
	if len(puzzles) == 0 {
		return
	}
	s.contribs = append(s.contribs, contributor{edges: edges, puzzles: puzzles})
}

// distillCorpus runs one greedy minimal-cover distillation (the afl-cmin
// shape): scan contributors repeatedly, each pass selecting the one
// covering the most still-uncovered edges (earliest index on ties, so the
// cover is deterministic), until every edge of the contributors' union is
// covered; then remove the puzzles owned by the unselected contributors
// from the corpus and drop those contributors from the tracker.
func (e *Engine) distillCorpus() {
	s := &e.sched
	if len(s.contribs) == 0 {
		return
	}
	covered := make([]bool, coverage.MapSize)
	selected := make([]bool, len(s.contribs))
	unionEdges := 0
	for {
		best, bestGain := -1, 0
		for i := range s.contribs {
			if selected[i] {
				continue
			}
			gain := 0
			for _, edge := range s.contribs[i].edges {
				if !covered[edge] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // every remaining contributor adds nothing
		}
		selected[best] = true
		for _, edge := range s.contribs[best].edges {
			if !covered[edge] {
				covered[edge] = true
				unionEdges++
			}
		}
	}
	dropped := 0
	kept := s.contribs[:0]
	for i := range s.contribs {
		if selected[i] {
			kept = append(kept, s.contribs[i])
			continue
		}
		for _, ref := range s.contribs[i].puzzles {
			if e.corp.Remove(ref.sig, ref.data) {
				dropped++
			}
		}
	}
	info := DistillInfo{
		Exec:           e.stats.Execs,
		SeedsKept:      len(kept),
		SeedsDropped:   len(s.contribs) - len(kept),
		PuzzlesDropped: dropped,
		Edges:          unionEdges,
	}
	// Zero the dropped tail so pruned contributors' edge lists and puzzle
	// refs are collectable.
	for i := len(kept); i < len(s.contribs); i++ {
		s.contribs[i] = contributor{}
	}
	s.contribs = kept
	s.distills++
	s.pending = append(s.pending, info)
	if len(s.pending) > schedMaxPendingDistills {
		s.pending = s.pending[len(s.pending)-schedMaxPendingDistills:]
	}
}

// takeDistills returns and clears the distillations run since the last
// call — the driver drains it at merge-window boundaries on the worker's
// own goroutine and turns the entries into DistillEvents.
func (e *Engine) takeDistills() []DistillInfo {
	if len(e.sched.pending) == 0 {
		return nil
	}
	out := e.sched.pending
	e.sched.pending = nil
	return out
}

// mutatorStats aggregates the lifetime operator accounting over models.
func (e *Engine) mutatorStats() []MutatorStat {
	out := make([]MutatorStat, len(e.muts))
	for i, m := range e.muts {
		out[i].Name = m.Name()
		for mi := range e.sched.trialsAll {
			out[i].Trials += e.sched.trialsAll[mi][i]
			out[i].Hits += e.sched.hitsAll[mi][i]
		}
	}
	return out
}

// pickMutator is the engine's single mutator draw site: the weighted
// adaptive draw with trial credit when the scheduler is on, the original
// uniform Pick — same call, same single RNG draw — when off.
func (e *Engine) pickMutator(c *datamodel.Chunk) mutator.Mutator {
	if !e.sched.on {
		return mutator.Pick(e.r, e.muts, c)
	}
	mut, idx := mutator.PickWeighted(e.r, e.muts, c, e.sched.modelWeights())
	if mut != nil {
		e.sched.recordTrial(idx)
	}
	return mut
}

// collectPuzzlesTracked is collectPuzzles recording the refs of the
// puzzles actually added, for the distillation tracker.
func collectPuzzlesTracked(corp *corpus.Corpus, model string, n *datamodel.Node, refs []puzzleRef) ([]byte, []puzzleRef) {
	if n.IsLeaf() {
		if corp.AddNode(model, n) {
			refs = append(refs, puzzleRef{sig: datamodel.RuleSignature(n.Chunk), data: n.Data})
		}
		return n.Data, refs
	}
	var puzzle []byte
	for _, c := range n.Children {
		var sub []byte
		sub, refs = collectPuzzlesTracked(corp, model, c, refs)
		puzzle = append(puzzle, sub...) // JOINT
	}
	data := append([]byte(nil), puzzle...)
	if corp.Add(corpus.Puzzle{Signature: nodeSignature(n), Data: data, Model: model}) {
		refs = append(refs, puzzleRef{sig: nodeSignature(n), data: data})
	}
	return puzzle, refs
}
