package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crash"
)

// This file is the step-driven campaign driver: the one loop every
// execution topology — serial, sharded-parallel, hub leaf, gossip mesh —
// advances a Fleet through. Where the original Run/RunUntil methods ran to
// completion and could only be observed after the fact, Drive checks for
// cancellation and reports progress at merge-window granularity, which is
// what the public session API (peachstar.Campaign.Start) builds on.
//
// Determinism contract: the driver only *observes* at window boundaries.
// The sequence of engine steps — and therefore the fuzzing streams, the
// coverage, the corpus and the crashes — is bit-for-bit identical to the
// original run-to-completion loops for the same budget, as long as the run
// is not stopped early. Hooks read state; they never feed anything back
// into the workers.

// Budget bounds one driven run. Zero values mean "unbounded": a Budget
// with neither an exec target nor a deadline runs until the stop channel
// closes (callers must supply one in that case, or Drive never returns).
type Budget struct {
	// Execs is the total fleet execution target, in the same absolute
	// "at least this many campaign executions" terms Run used; 0 means no
	// execution bound.
	Execs int
	// Deadline is the wall-clock bound, checked before every engine step
	// exactly like RunUntil checked it; the zero time means no deadline.
	Deadline time.Time
}

// WindowInfo is the driver's per-merge-window progress report, delivered
// to the WindowHook on the worker goroutine that finished the window.
type WindowInfo struct {
	// Worker indexes the worker that completed the window.
	Worker int
	// WorkerExecs is that worker's own execution count.
	WorkerExecs int
	// FleetExecs is the fleet total as of the workers' published counters
	// (the ExecsApprox figure: exact at quiescence, lagging live workers
	// by at most one merge window).
	FleetExecs int
	// Edges is the published union edge count after this window.
	Edges int
	// NewEdges is how many edges this window added to the published
	// union; 0 when the window found nothing new (or another worker
	// published a larger union first).
	NewEdges int
	// NewCrashes are the unique crash records this worker discovered in
	// this window, in discovery order. Records are detached copies; the
	// same fault found by two workers appears in both workers' windows
	// (deduplicate by crash.RecordKey for fleet-level reporting).
	NewCrashes []*crash.Record
	// Distills are the corpus distillations this worker ran in this
	// window, in execution order; nil unless the adaptive scheduler is on
	// and a distillation cadence boundary fell inside the window.
	Distills []DistillInfo
	// NewStates are the state-machine states this worker sent its first
	// message from in this window, in reach order; nil unless session
	// fuzzing is on (Config.Session).
	NewStates []StateInfo
}

// WindowHook observes one completed merge window. It is called on worker
// goroutines — several may fire concurrently on a multi-worker fleet — so
// implementations must be safe for concurrent use, and must not call back
// into the Fleet's non-concurrent methods (Stats, Run, Drive). Keep hooks
// fast: the worker does not fuzz while its hook runs.
type WindowHook func(WindowInfo)

// stopped is the driver's non-blocking cancellation probe, checked once
// per merge window.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Drive advances the fleet until the budget is spent or the stop channel
// closes, whichever comes first. It is the engine room under Run and
// RunUntil (which pass a nil stop and hook) and under the public session
// API (which passes both). Cancellation is checked at merge-window
// granularity — a stopped fleet finishes its in-flight windows, syncs
// them, and returns, so no discovered state is ever abandoned — and the
// hook, when non-nil, observes every completed window.
//
// Drive must not be called concurrently with itself or any other
// fleet-advancing method; Stats and Execs must wait for it to return
// (StatsApprox and ExecsApprox are the concurrent-safe observers).
func (f *Fleet) Drive(stop <-chan struct{}, b Budget, hook WindowHook) {
	defer f.publishExecs()
	if len(f.workers) == 1 {
		f.driveSerial(stop, b, hook)
		return
	}
	targets := f.shardTargets(b.Execs)
	var wg sync.WaitGroup
	for i, w := range f.workers {
		wg.Add(1)
		go func(w *Engine, i, target int) {
			defer wg.Done()
			f.driveWorker(stop, w, i, target, b.Deadline, hook)
		}(w, i, targets[i])
	}
	wg.Wait()
}

// shardTargets splits the remaining exec budget evenly across workers and
// returns each worker's absolute target, exactly as Run always sharded
// it. With no exec bound every target is -1 (unbounded) — the sentinel
// must not be 0, because a fresh worker handed a zero shard legitimately
// has the absolute target 0 and must do nothing, not fuzz forever.
func (f *Fleet) shardTargets(execBudget int) []int {
	targets := make([]int, len(f.workers))
	if execBudget <= 0 {
		for i := range targets {
			targets[i] = -1
		}
		return targets
	}
	remaining := execBudget - f.Execs()
	if remaining < 0 {
		remaining = 0
	}
	n := len(f.workers)
	for i, w := range f.workers {
		shard := remaining / n
		if i < remaining%n {
			shard++
		}
		targets[i] = w.stats.Execs + shard
	}
	return targets
}

// driveWorker is one worker's driven loop: fuzz a merge window (checking
// the deadline before every step when one is set), exchange with the
// shared state, publish counters, report to the hook, then re-check the
// exec target, the deadline, and the stop channel. target is the
// worker's absolute exec target (-1 = unbounded); a target at or below
// the current count means "no budget left" and the worker returns
// without fuzzing or syncing, matching the original Run's skip of
// zero-shard workers.
func (f *Fleet) driveWorker(stop <-chan struct{}, w *Engine, i, target int, deadline time.Time, hook WindowHook) {
	hasTarget := target >= 0
	hasDeadline := !deadline.IsZero()
	for {
		if hasTarget && w.stats.Execs >= target {
			return
		}
		//peachstar:nondeterministic wall-clock deadline only gates loop exit, never fuzzing state
		if hasDeadline && !time.Now().Before(deadline) {
			return
		}
		if stopped(stop) {
			return
		}
		window := w.stats.Execs + f.merge
		if hasTarget && window > target {
			window = target
		}
		for w.stats.Execs < window && w.execErr == nil {
			//peachstar:nondeterministic wall-clock deadline only gates loop exit, never fuzzing state
			if hasDeadline && !time.Now().Before(deadline) {
				break
			}
			w.Step()
		}
		edges, corpusLen := f.syncWindow(i)
		f.publishWindow(i, edges, corpusLen, hook)
		if w.execErr != nil {
			// Unrecoverable backend: the in-flight window was synced and
			// reported, but no further fuzzing is possible on this worker.
			return
		}
	}
}

// driveSerial is the single-worker loop. It performs no sync exchanges at
// all — that is what keeps a one-worker fleet bit-for-bit identical to the
// serial engine — but still observes window boundaries for cancellation,
// publication, and hooks. The published figures come straight from the
// lone worker, whose state *is* the campaign state.
func (f *Fleet) driveSerial(stop <-chan struct{}, b Budget, hook WindowHook) {
	w := f.workers[0]
	hasDeadline := !b.Deadline.IsZero()
	for {
		if b.Execs > 0 && w.stats.Execs >= b.Execs {
			return
		}
		//peachstar:nondeterministic wall-clock deadline only gates loop exit, never fuzzing state
		if hasDeadline && !time.Now().Before(b.Deadline) {
			return
		}
		if stopped(stop) {
			return
		}
		window := w.stats.Execs + f.merge
		if b.Execs > 0 && window > b.Execs {
			window = b.Execs
		}
		for w.stats.Execs < window && w.execErr == nil {
			//peachstar:nondeterministic wall-clock deadline only gates loop exit, never fuzzing state
			if hasDeadline && !time.Now().Before(b.Deadline) {
				break
			}
			w.Step()
		}
		edges, corpusLen := f.serialFigures()
		f.publishWindow(0, edges, corpusLen, hook)
		if w.execErr != nil {
			// Unrecoverable backend: final figures are published; stop.
			return
		}
	}
}

// serialFigures is the single-worker fleet's published union view: the
// lone worker's own edges and corpus, raised to the shared state's when
// remote peers (a hub's leaves, mesh links) have merged more into it
// than the worker has pulled back out — the same relay-fleet logic
// PublishStats applies at quiescence, so live Snapshots and StatsEvents
// on a serving single-worker campaign include remote material.
func (f *Fleet) serialFigures() (edges, corpusLen int) {
	w := f.workers[0]
	edges, corpusLen = w.virgin.Edges(), w.corp.Len()
	se, sl := f.state.Figures()
	if se > edges {
		edges = se
	}
	if sl > corpusLen {
		corpusLen = sl
	}
	return edges, corpusLen
}

// syncWindow runs worker i's merge window against the shared state and
// captures the post-merge union figures under the same lock, so the
// window's published edge and corpus counts are exactly the state this
// window left behind.
func (f *Fleet) syncWindow(i int) (edges, corpusLen int) {
	st := f.state
	st.mu.Lock()
	f.peers[i].Exchange(st.virgin, st.corp, st.crashes)
	edges = st.virgin.Edges()
	corpusLen = st.corp.Len()
	st.mu.Unlock()
	return edges, corpusLen
}

// publishCounters stores worker i's own counters into its published
// atomics.
func (f *Fleet) publishCounters(i int) {
	p, w := f.peers[i], f.workers[i]
	atomic.StoreInt64(&p.execsPub, int64(w.stats.Execs))
	atomic.StoreInt64(&p.pathsPub, int64(w.stats.Paths))
	atomic.StoreInt64(&p.itersPub, int64(w.stats.Iterations))
	atomic.StoreInt64(&p.semExecsPub, int64(w.stats.SemanticExecs))
	atomic.StoreInt64(&p.semPathsPub, int64(w.stats.SemanticPaths))
	atomic.StoreInt64(&p.restartsPub, int64(w.execRestarts()))
	if w.sess != nil {
		atomic.StoreInt64(&p.seqsPub, int64(w.stats.Sequences))
		atomic.StoreInt64(&p.statesPub, int64(w.sess.reachedN))
	}
	if w.sched.on {
		for mi := range p.mutTrialsPub {
			var t, h uint64
			for m := range w.sched.trialsAll {
				t += w.sched.trialsAll[m][mi]
				h += w.sched.hitsAll[m][mi]
			}
			atomic.StoreInt64(&p.mutTrialsPub[mi], int64(t))
			atomic.StoreInt64(&p.mutHitsPub[mi], int64(h))
		}
		atomic.StoreInt64(&p.distillsPub, int64(w.sched.distills))
	}
}

// publishWindow stores worker i's counters and the fleet-level union
// figures into the published atomics (the race-safe StatsApprox inputs),
// then delivers the window to the hook.
func (f *Fleet) publishWindow(i int, edges, corpusLen int, hook WindowHook) {
	p, w := f.peers[i], f.workers[i]
	f.publishCounters(i)
	atomic.StoreInt64(&f.pubCorpus, int64(corpusLen))
	delta := f.publishEdges(edges)
	if hook == nil {
		return
	}
	var newRecs []*crash.Record
	if n := w.crashes.Unique(); n > p.crashesSeen {
		recs := w.crashes.Records()
		newRecs = recs[p.crashesSeen:]
		p.crashesSeen = n
	}
	hook(WindowInfo{
		Worker:      i,
		WorkerExecs: w.stats.Execs,
		FleetExecs:  f.ExecsApprox(),
		Edges:       int(atomic.LoadInt64(&f.pubEdges)),
		NewEdges:    delta,
		NewCrashes:  newRecs,
		Distills:    w.takeDistills(),
		NewStates:   w.takeNewStates(),
	})
}

// publishEdges raises the published union edge count to edges (it never
// lowers it — workers publish concurrently and coverage only grows) and
// returns how many edges this publication added.
func (f *Fleet) publishEdges(edges int) (delta int) {
	for {
		old := atomic.LoadInt64(&f.pubEdges)
		if int64(edges) <= old {
			return 0
		}
		if atomic.CompareAndSwapInt64(&f.pubEdges, old, int64(edges)) {
			return edges - int(old)
		}
	}
}

// PublishStats refreshes every published counter while the fleet is
// quiescent (no Drive in flight): worker counters become exact, and the
// union edge and corpus figures are taken from the lone worker (serial
// fleets never sync, so the worker is the union) or from the shared state
// (which every worker's final window synced into). Drivers call it after
// Drive returns so StatsApprox, and with it Run.Snapshot and the final
// StatsEvent, settle to exact values without the merge work of Stats.
func (f *Fleet) PublishStats() {
	for i := range f.workers {
		f.publishCounters(i)
	}
	if len(f.workers) == 1 {
		// A relay fleet (a hub that executes nothing) accumulates remote
		// state its idle worker never pulled; serialFigures reports
		// whichever view knows more.
		edges, corpusLen := f.serialFigures()
		f.publishEdges(edges)
		atomic.StoreInt64(&f.pubCorpus, int64(corpusLen))
		return
	}
	edges, corpusLen := f.state.Figures()
	f.publishEdges(edges)
	atomic.StoreInt64(&f.pubCorpus, int64(corpusLen))
}

// StatsApprox is the concurrent-safe campaign snapshot: safe to call from
// any goroutine while Drive is in flight, at the price of precision.
//
// Which counters are exact and which approximate:
//
//   - Execs, Paths, Iterations, SemanticExecs, SemanticPaths: read from
//     the workers' published counters — as of each worker's latest merge
//     window, so they lag a live fleet by at most one window and are
//     exact whenever the fleet is idle (after PublishStats).
//   - Edges, CorpusPuzzles: the published union figures, same
//     one-window lag.
//   - Sequences, StatesReached: published session counters, same lag;
//     StatesReached is the max over workers (an approximation of the
//     union — exact for the common single-worker session campaign). The
//     full per-state breakdown (StateCoverage, SeqOpStats) is only in
//     the exact Stats.
//   - UniqueCrashes, Hangs: exact at all times — crash banks are
//     internally locked, so Crashes() is safe concurrently.
//
// Stats remains the exact merge-everything snapshot, and remains unsafe
// to call while the fleet runs.
func (f *Fleet) StatsApprox() Stats {
	var s Stats
	for _, p := range f.peers {
		s.Execs += int(atomic.LoadInt64(&p.execsPub))
		s.Paths += int(atomic.LoadInt64(&p.pathsPub))
		s.Iterations += int(atomic.LoadInt64(&p.itersPub))
		s.SemanticExecs += int(atomic.LoadInt64(&p.semExecsPub))
		s.SemanticPaths += int(atomic.LoadInt64(&p.semPathsPub))
		s.TargetRestarts += int(atomic.LoadInt64(&p.restartsPub))
		s.Sequences += int(atomic.LoadInt64(&p.seqsPub))
		if n := int(atomic.LoadInt64(&p.statesPub)); n > s.StatesReached {
			s.StatesReached = n
		}
	}
	s.Edges = int(atomic.LoadInt64(&f.pubEdges))
	s.CorpusPuzzles = int(atomic.LoadInt64(&f.pubCorpus))
	if f.Adaptive() {
		ms := make([]MutatorStat, len(f.workers[0].muts))
		for i, m := range f.workers[0].muts {
			ms[i].Name = m.Name()
		}
		for _, p := range f.peers {
			for i := range ms {
				ms[i].Trials += uint64(atomic.LoadInt64(&p.mutTrialsPub[i]))
				ms[i].Hits += uint64(atomic.LoadInt64(&p.mutHitsPub[i]))
			}
			s.Distills += int(atomic.LoadInt64(&p.distillsPub))
		}
		s.MutatorStats = ms
	}
	bank := f.Crashes()
	s.UniqueCrashes = bank.Unique()
	s.Hangs = bank.Hangs()
	return s
}
