package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mem"
)

// toyTarget is a small instrumented protocol: packets are
//
//	op(1) | len(1, sizeof payload) | payload | sum8(1 over op,len,payload)
//
// The three opcodes gate their deep paths on the *same* payload prefix
// conditions (the shared construction rules of Fig. 2): payload[0] == 0xAB,
// then payload[1] in the 0xC0 row. Each opcode rewards the prefix with
// distinct blocks, so a prefix discovered under one opcode is a new path
// under every other — exactly the cross-opcode transfer packet cracking
// exploits. Opcode 2 crashes at the second gate.
type toyTarget struct {
	ids []coverage.BlockID
}

func newToyTarget() *toyTarget {
	return &toyTarget{ids: coverage.Blocks("toy", 32)}
}

func (tt *toyTarget) Handle(tr *coverage.Tracer, pkt []byte) {
	tr.Hit(tt.ids[0])
	if len(pkt) < 3 {
		tr.Hit(tt.ids[1])
		return
	}
	op, ln := pkt[0], int(pkt[1])
	if 2+ln+1 != len(pkt) {
		tr.Hit(tt.ids[2])
		return
	}
	var sum byte
	for _, b := range pkt[:len(pkt)-1] {
		sum += b
	}
	if sum != pkt[len(pkt)-1] {
		tr.Hit(tt.ids[3])
		return
	}
	payload := pkt[2 : 2+ln]
	// Shared payload scan (the similar parsing code of Fig. 2).
	for _, b := range payload {
		if b&1 == 0 {
			tr.Hit(tt.ids[4])
		} else {
			tr.Hit(tt.ids[5])
		}
	}
	if op < 1 || op > 3 {
		tr.Hit(tt.ids[6])
		return
	}
	base := int(op-1) * 6
	tr.Hit(tt.ids[7+base])
	if len(payload) >= 1 && payload[0] == 0xAB {
		tr.Hit(tt.ids[8+base])
		if len(payload) >= 8 {
			tr.Hit(tt.ids[9+base])
			if op == 2 {
				panic(&mem.Fault{Kind: mem.SEGV, Site: "toy.op2"})
			}
			if payload[7] == op {
				tr.Hit(tt.ids[10+base])
			}
		}
	}
}

func toyModels() []*datamodel.Model {
	mk := func(op uint64) *datamodel.Model {
		return datamodel.NewModel(
			map[uint64]string{1: "op1", 2: "op2", 3: "op3"}[op],
			datamodel.Num("op", 1, op).AsToken(),
			datamodel.Num("len", 1, 0).WithRel(datamodel.SizeOf, "payload", 0),
			datamodel.BytesVar("payload", 0, 16, []byte{0, 0}),
			datamodel.Num("sum", 1, 0).WithFix(datamodel.Sum8, "op", "len", "payload"),
		)
	}
	return []*datamodel.Model{mk(1), mk(2), mk(3)}
}

func newEngine(t *testing.T, strat Strategy, seed uint64) *Engine {
	t.Helper()
	e, err := New(Config{
		Models:   toyModels(),
		Target:   newToyTarget(),
		Strategy: strat,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Target: newToyTarget()}); err == nil {
		t.Fatal("missing models should error")
	}
	if _, err := New(Config{Models: toyModels()}); err == nil {
		t.Fatal("missing target should error")
	}
}

func TestStepCountsExecs(t *testing.T) {
	e := newEngine(t, StrategyPeach, 1)
	n := e.Step()
	if n != 1 {
		t.Fatalf("baseline step execs = %d, want 1", n)
	}
	s := e.Stats()
	if s.Iterations != 1 || s.Execs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRunReachesBudget(t *testing.T) {
	e := newEngine(t, StrategyPeachStar, 2)
	e.Run(500)
	if e.Stats().Execs < 500 {
		t.Fatalf("execs = %d", e.Stats().Execs)
	}
}

func TestPathsGrow(t *testing.T) {
	e := newEngine(t, StrategyPeach, 3)
	e.Run(300)
	if e.Stats().Paths == 0 {
		t.Fatal("baseline found no paths at all")
	}
	if e.Stats().Edges == 0 {
		t.Fatal("no edges recorded")
	}
}

func TestPeachStarBuildsCorpus(t *testing.T) {
	e := newEngine(t, StrategyPeachStar, 4)
	e.Run(400)
	if e.Corpus().Empty() {
		t.Fatal("peach* should have cracked valuable seeds into puzzles")
	}
}

func TestBaselineNeverBuildsCorpus(t *testing.T) {
	e := newEngine(t, StrategyPeach, 5)
	e.Run(400)
	if !e.Corpus().Empty() {
		t.Fatal("baseline must not crack seeds")
	}
}

func TestDisableCrackerKeepsCorpusEmpty(t *testing.T) {
	e, err := New(Config{
		Models: toyModels(), Target: newToyTarget(),
		Strategy: StrategyPeachStar, Seed: 6, DisableCracker: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(400)
	if !e.Corpus().Empty() {
		t.Fatal("ablated cracker must keep corpus empty")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	a := newEngine(t, StrategyPeachStar, 7)
	b := newEngine(t, StrategyPeachStar, 7)
	a.Run(300)
	b.Run(300)
	sa, sb := a.Stats(), b.Stats()
	if sa.Paths != sb.Paths || sa.Execs != sb.Execs || sa.UniqueCrashes != sb.UniqueCrashes {
		t.Fatalf("campaigns diverged: %+v vs %+v", sa, sb)
	}
}

func TestPeachStarFindsDeepCrash(t *testing.T) {
	// The op2 crash needs payload[0:2] == AB CD behind a valid checksum
	// and length. Peach* should find it within a modest budget on most
	// seeds; assert over a few seeds to avoid flakiness while keeping
	// the bar meaningful.
	found := false
	for seed := uint64(0); seed < 3 && !found; seed++ {
		e := newEngine(t, StrategyPeachStar, seed)
		e.Run(6000)
		if e.Stats().UniqueCrashes > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("peach* did not find the seeded crash in 3x6000 execs")
	}
}

func TestPeachStarCoverageNoCollapse(t *testing.T) {
	// The toy target's path count is dominated by raw payload diversity
	// (the parity-scan buckets), which donation does not add to — the
	// coverage *advantage* of Peach* is asserted on the six real targets
	// in internal/bench. Here the invariant is weaker: spending part of
	// the budget on semantic batches must not collapse exploration.
	var base, star int
	for seed := uint64(0); seed < 5; seed++ {
		eb := newEngine(t, StrategyPeach, seed)
		eb.Run(1500)
		es := newEngine(t, StrategyPeachStar, seed)
		es.Run(1500)
		base += eb.Stats().Paths
		star += es.Stats().Paths
	}
	if float64(star) < 0.8*float64(base) {
		t.Fatalf("peach* paths %d collapsed versus peach paths %d", star, base)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyPeach.String() != "Peach" || StrategyPeachStar.String() != "Peach*" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should format")
	}
}

func TestSemanticGenerateRespectsMaxBatch(t *testing.T) {
	e, err := New(Config{
		Models: toyModels(), Target: newToyTarget(),
		Strategy: StrategyPeachStar, Seed: 8, MaxBatch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the corpus.
	e.Run(300)
	if e.Corpus().Empty() {
		t.Skip("corpus did not populate under this seed")
	}
	e.pending = e.pending[:0]
	e.semanticGenerate(e.cfg.Models[0])
	if len(e.pending) > 5 {
		t.Fatalf("batch = %d, want <= 5", len(e.pending))
	}
}

func TestCollectPuzzlesDFSOrder(t *testing.T) {
	// Algorithm 2: the puzzle of an interior node is the ordered
	// concatenation of its children's puzzles.
	m := toyModels()[0]
	inst := m.Generate()
	e := newEngine(t, StrategyPeachStar, 9)
	got := collectPuzzles(e.corp, m.Name, inst)
	if string(got) != string(inst.Bytes()) {
		t.Fatal("root puzzle must equal the full packet bytes")
	}
	// Payload leaf puzzle must be present in the corpus.
	donors := e.corp.Donors(inst.Find("payload").Chunk)
	if len(donors) == 0 {
		t.Fatal("payload puzzle not collected")
	}
}

func TestNodeSignatureComposition(t *testing.T) {
	m := toyModels()[0]
	inst := m.Generate()
	sig := nodeSignature(inst)
	if sig == "" || sig[:4] != "blk(" {
		t.Fatalf("signature = %q", sig)
	}
	inst2 := toyModels()[1].Generate()
	if nodeSignature(inst2) == sig {
		t.Fatal("different token values must split block signatures")
	}
}
