// Package sandbox runs one target execution per packet and converts abnormal
// terminations into structured crash records.
//
// In the paper, the target is a separate instrumented process and crashes or
// hangs are observed by the fuzzer supervisor (Algorithm 1, RUNTARGET /
// CRASH / HANG). Here the target is an in-process Go reimplementation, so
// the sandbox's job is to (a) reset per-execution state, (b) recover from
// panics — both simulated memory faults from internal/mem and native Go
// runtime errors, which correspond to the SEGV class — and (c) enforce a
// step budget that turns runaway parsing loops into hang reports.
package sandbox

import (
	"fmt"
	"runtime"

	"repro/internal/checkpoint"
	"repro/internal/coverage"
	"repro/internal/mem"
)

// Outcome classifies one target execution.
type Outcome int

// Execution outcomes. OK covers both accepted and cleanly-rejected packets;
// the distinction the fuzzer cares about is carried by the coverage map.
const (
	OK Outcome = iota
	Crash
	Hang
)

// String returns the conventional lowercase name of the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Result is the supervisor's view of one execution: what happened, the
// fault details when it crashed, and the coverage snapshot hash used for
// path-signature triage.
//
// Result is also the return type of the pluggable execution backends in
// internal/executor; the fields below the fault are filled only by backends
// that can supply them (the in-process sandbox reports HangSteps, the
// process executor additionally journals Repro).
type Result struct {
	Outcome Outcome
	Fault   *mem.Fault // non-nil iff Outcome == Crash
	PathSig uint64     // coverage.Hash of the execution's map
	// HangSteps is the budget the hanging execution exhausted: the step
	// budget for an in-process target, the watchdog timeout in
	// milliseconds for a supervised process. 0 unless Outcome == Hang.
	HangSteps int
	// Repro, when non-nil, is the exact packet sequence (oldest first,
	// the current packet last) that drove the target from a fresh start
	// to this crash or hang — the replayable reproducer captured by the
	// process executor. Always nil for in-process executions, whose
	// targets are reset around every packet.
	Repro [][]byte
	// ReproStarts, when Repro is non-nil, lists the indices into Repro
	// where a protocol session began (executor.SessionExecutor
	// boundaries). Empty when the journal spans a single implicit
	// session.
	ReproStarts []int
}

// Target is the minimal interface the sandbox needs: a packet handler that
// reports coverage through the given tracer. Concrete protocol targets live
// in internal/targets and implement the richer targets.Target interface,
// which embeds this one.
type Target interface {
	// Handle processes one protocol packet. It may panic with *mem.Fault
	// (simulated memory violation) or any runtime error (native fault);
	// the sandbox recovers both.
	Handle(t *coverage.Tracer, packet []byte)
}

// StateCheckpointer is the optional interface of targets whose long-lived
// state (register banks, simulated heap wear, activation flags) a campaign
// checkpoint can capture. Targets that implement it make warm restarts
// exact: the restored campaign resumes against the same target state the
// interrupted one had accumulated, not a fresh instance. Targets without
// it — including every real target process, whose memory the fuzzer cannot
// serialize — start fresh after a restore, which is the same contract a
// real-target campaign has after any supervised restart.
type StateCheckpointer interface {
	// SnapshotState writes the target's durable state through the
	// checkpoint codec.
	SnapshotState(w *checkpoint.Writer)
	// RestoreState overwrites the target's state with a
	// SnapshotState-produced dump.
	RestoreState(r *checkpoint.Reader) error
}

// Runner executes packets against one target instance with one tracer.
type Runner struct {
	target Target
	tracer *coverage.Tracer
}

// NewRunner returns a runner for the given target. The runner owns its
// tracer; callers read coverage through Tracer().
func NewRunner(t Target) *Runner {
	return &Runner{target: t, tracer: coverage.NewTracer()}
}

// Tracer exposes the runner's coverage tracer so the engine can inspect the
// map of the most recent execution.
func (r *Runner) Tracer() *coverage.Tracer { return r.tracer }

// Target exposes the runner's target instance, so session-aware callers
// can reach optional per-session interfaces the target implements.
func (r *Runner) Target() Target { return r.target }

// Run executes one packet, returning the classified result. The tracer is
// reset before the execution, so after Run returns the tracer holds exactly
// this execution's coverage.
func (r *Runner) Run(packet []byte) (res Result) {
	r.tracer.Reset()
	defer func() {
		// PathHash walks only the lines this execution dirtied; the value
		// is identical to coverage.Hash over the full map.
		res.PathSig = r.tracer.PathHash()
		rec := recover()
		if rec == nil {
			return
		}
		res.Outcome = Crash
		switch f := rec.(type) {
		case *mem.Fault:
			res.Fault = f
		case runtime.Error:
			// Native Go faults (index out of range, nil deref)
			// correspond to the SEGV class in Table I; the site
			// is the panicking frame.
			res.Fault = &mem.Fault{Kind: mem.SEGV, Site: panicSite()}
		case *hangError:
			res.Outcome = Hang
			res.Fault = nil
			res.HangSteps = f.budget
		default:
			res.Fault = &mem.Fault{Kind: mem.SEGV, Site: fmt.Sprint(rec)}
		}
	}()
	r.target.Handle(r.tracer, packet)
	return Result{Outcome: OK}
}

// panicSite walks the stack to find the first frame outside this package
// and the runtime, giving a stable dedup key for native faults. The key is
// the function name without a line number: one vulnerable check commonly
// manifests at several adjacent fault PCs (a slice expression and the index
// next to it), and ASan-style unique-bug counting — what the paper's
// Table I reports — treats those as one bug.
func panicSite() string {
	var pcs [32]uintptr
	n := runtime.Callers(4, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function != "" && !isInfra(f.Function) {
			return f.Function
		}
		if !more {
			break
		}
	}
	return "unknown"
}

func isInfra(fn string) bool {
	for _, p := range []string{"runtime.", "repro/internal/sandbox."} {
		if len(fn) >= len(p) && fn[:len(p)] == p {
			return true
		}
	}
	return false
}

// hangError is the panic payload used by Budget to abort an execution that
// exceeded its step budget. It carries the exhausted budget so the hang
// record can report how much work the execution was allowed before the
// supervisor gave up on it.
type hangError struct{ budget int }

func (*hangError) Error() string { return "sandbox: step budget exhausted" }

// Budget is a step counter a target threads through its parsing loops to
// make hangs detectable. Tick panics once the budget is exhausted; the
// sandbox classifies that panic as a Hang carrying the exhausted budget.
type Budget struct {
	left int
	size int
}

// NewBudget returns a budget of n steps.
func NewBudget(n int) *Budget { return &Budget{left: n, size: n} }

// Tick consumes one step, aborting the execution when none remain.
func (b *Budget) Tick() {
	b.left--
	if b.left < 0 {
		panic(&hangError{budget: b.size})
	}
}
