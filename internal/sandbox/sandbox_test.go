package sandbox

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/mem"
)

// scriptTarget panics or loops according to its mode.
type scriptTarget struct {
	mode string
	heap *mem.Heap
}

func (s *scriptTarget) Handle(t *coverage.Tracer, packet []byte) {
	t.Hit(1)
	switch s.mode {
	case "ok":
		if len(packet) > 0 {
			t.Hit(2)
		}
	case "memfault":
		s.heap = mem.NewHeap()
		a := s.heap.Alloc(4)
		s.heap.Free(a, "script.free")
		s.heap.Load(a, "script.uaf")
	case "native":
		var p []byte
		_ = p[5] // index out of range
	case "hang":
		b := NewBudget(100)
		for {
			b.Tick()
		}
	case "strpanic":
		panic("custom condition")
	}
}

func TestRunOK(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "ok"})
	res := r.Run([]byte{1})
	if res.Outcome != OK || res.Fault != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.PathSig == 0 {
		t.Fatal("path signature should be non-zero for a non-empty map")
	}
}

func TestRunMemFault(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "memfault"})
	res := r.Run(nil)
	if res.Outcome != Crash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
	if res.Fault == nil || res.Fault.Kind != mem.HeapUseAfterFree {
		t.Fatalf("fault = %+v", res.Fault)
	}
	if res.Fault.Site != "script.uaf" {
		t.Fatalf("site = %q", res.Fault.Site)
	}
}

func TestRunNativeFault(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "native"})
	res := r.Run(nil)
	if res.Outcome != Crash || res.Fault == nil || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %+v fault = %+v", res, res.Fault)
	}
	if res.Fault.Site == "" || res.Fault.Site == "unknown" {
		t.Fatalf("native fault site not resolved: %q", res.Fault.Site)
	}
}

func TestRunHang(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "hang"})
	res := r.Run(nil)
	if res.Outcome != Hang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
	if res.Fault != nil {
		t.Fatalf("hang should carry no fault, got %+v", res.Fault)
	}
}

func TestRunStringPanic(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "strpanic"})
	res := r.Run(nil)
	if res.Outcome != Crash || res.Fault == nil || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunnerRecoversAcrossRuns(t *testing.T) {
	tgt := &scriptTarget{mode: "native"}
	r := NewRunner(tgt)
	if res := r.Run(nil); res.Outcome != Crash {
		t.Fatal("expected crash")
	}
	tgt.mode = "ok"
	if res := r.Run([]byte{1}); res.Outcome != OK {
		t.Fatal("runner should be reusable after a crash")
	}
}

func TestPathSigSameForSameTrace(t *testing.T) {
	r := NewRunner(&scriptTarget{mode: "ok"})
	a := r.Run([]byte{1})
	b := r.Run([]byte{2})
	if a.PathSig != b.PathSig {
		t.Fatal("identical traces should produce identical path signatures")
	}
	c := r.Run(nil) // takes the short path: only Hit(1)
	if c.PathSig == a.PathSig {
		t.Fatal("different traces should (almost surely) differ in signature")
	}
}

func TestBudgetAllowsExactlyN(t *testing.T) {
	b := NewBudget(3)
	for i := 0; i < 3; i++ {
		b.Tick()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("4th tick should panic")
		}
	}()
	b.Tick()
}

func TestOutcomeString(t *testing.T) {
	if OK.String() != "ok" || Crash.String() != "crash" || Hang.String() != "hang" {
		t.Fatal("outcome names wrong")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome should still format")
	}
}
