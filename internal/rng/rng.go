// Package rng provides the deterministic pseudo-random source shared by the
// mutators, the generation strategies, and the experiment harness.
//
// The paper's prototype inherits randomness from Peach; reproducing the
// evaluation requires controlled repetitions (10 per configuration), so this
// repository routes all randomness through an explicitly seeded generator.
// The core is xoshiro256**, small, fast, and stdlib-free.
package rng

// RNG is a seeded xoshiro256** generator. The zero value is not usable; use
// New. An RNG is not safe for concurrent use; each worker owns one.
type RNG struct {
	s [4]uint64
}

// splitmix64 is the finalizer of the splitmix64 generator: it whitens one
// state word into one output word. Both seeding and stream splitting build
// on it.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// goldenGamma is splitmix64's golden-ratio state increment.
const goldenGamma = 0x9e3779b97f4a7c15

// New returns a generator seeded from the given value via splitmix64, which
// guarantees a non-zero internal state for every seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += goldenGamma
		r.s[i] = splitmix64(sm)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Byte returns a uniform byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Chance returns true with probability 1/n.
func (r *RNG) Chance(n int) bool { return r.Intn(n) == 0 }

// Range returns a uniform value in [lo, hi] inclusive. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bytes fills and returns a fresh slice of n uniform bytes.
func (r *RNG) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = r.Byte()
	}
	return out
}

// Pick returns a uniform element of the non-empty slice.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Fork derives an independent generator from the current stream, for handing
// to a sub-component without correlating its draws with the parent's.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

// State returns the generator's internal state words, the campaign-checkpoint
// seam: restoring them with SetState resumes the stream exactly where it was,
// so a warm-restarted worker continues the draw sequence it was killed in the
// middle of instead of replaying from exec zero.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value previously
// obtained from State. The all-zero state is xoshiro256**'s one absorbing
// fixed point (it only emits zeros) and can never be produced by New or by
// stepping a valid state, so it is rejected as corrupt.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroState
	}
	r.s = s
	return nil
}

// errZeroState is returned by SetState for the invalid all-zero state.
var errZeroState = errorString("rng: all-zero state")

// errorString is a stdlib-free error type (the package avoids importing
// anything, keeping the hot-path generator dependency-light).
type errorString string

func (e errorString) Error() string { return string(e) }

// Split derives the seed of worker stream `stream` from a campaign seed, for
// sharding one campaign across parallel workers. Stream 0 is the campaign
// seed itself, so a single-stream campaign draws the exact sequence of the
// unsplit one; streams i > 0 are decorrelated from the campaign stream and
// from each other by a splitmix64 finalizer over the golden-ratio-spaced
// index (New then whitens the result again, so even adjacent streams share
// no structure).
func Split(seed uint64, stream int) uint64 {
	if stream == 0 {
		return seed
	}
	return splitmix64(seed + uint64(stream)*goldenGamma)
}
