package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	r := New(3)
	sawLo, sawHi := false, false
	for i := 0; i < 5000; i++ {
		v := r.Range(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("Range(5,8) = %d", v)
		}
		if v == 5 {
			sawLo = true
		}
		if v == 8 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("Range did not cover both endpoints")
	}
}

func TestRangePanicsWhenInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(2,1) should panic")
		}
	}()
	New(1).Range(2, 1)
}

func TestBytesLength(t *testing.T) {
	r := New(9)
	b := r.Bytes(37)
	if len(b) != 37 {
		t.Fatalf("len = %d", len(b))
	}
}

func TestPickCoversAll(t *testing.T) {
	r := New(11)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered %d/3 values", len(seen))
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64, xs []int) bool {
		r := New(seed)
		orig := map[int]int{}
		for _, x := range xs {
			orig[x]++
		}
		cp := append([]int(nil), xs...)
		Shuffle(r, cp)
		got := map[int]int{}
		for _, x := range cp {
			got[x]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func TestChanceAlwaysWithOne(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if !r.Chance(1) {
			t.Fatal("Chance(1) must always be true")
		}
	}
}

func TestUniformityRough(t *testing.T) {
	r := New(123)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Fatalf("bucket %d badly skewed: %d", i, c)
		}
	}
}

func TestSplitStream0IsIdentity(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		if got := Split(seed, 0); got != seed {
			t.Fatalf("Split(%d, 0) = %d, want the seed itself", seed, got)
		}
	}
}

func TestSplitStreamsDecorrelated(t *testing.T) {
	const seed = 7
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		s := Split(seed, i)
		if seen[s] {
			t.Fatalf("stream %d collides with an earlier stream (seed %d)", i, s)
		}
		seen[s] = true
	}
	// First draws of adjacent streams must differ too.
	a, b := New(Split(seed, 1)).Uint64(), New(Split(seed, 2)).Uint64()
	if a == b {
		t.Fatal("adjacent split streams emit identical first draw")
	}
}
