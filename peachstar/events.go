package peachstar

import "time"

// This file defines the typed event stream of a running campaign session
// (Run.Events): what a caller can observe about a campaign while it runs,
// without touching the fuzzing loop. Events are emitted at merge-window
// granularity on the fleet's worker goroutines and delivered through a
// bounded drop-oldest channel — observation never stalls the hot loop,
// and a slow consumer loses old progress snapshots, never crash reports.

// Event is one item of a Run's event stream. The concrete types are
// StatsEvent, NewCoverageEvent, CrashEvent, DistillEvent, StateEvent,
// SyncWindowEvent, and CheckpointEvent; consumers type-switch:
//
//	for ev := range run.Events() {
//		switch ev := ev.(type) {
//		case peachstar.CrashEvent:
//			log.Printf("crash: %s at %s", ev.Record.Kind, ev.Record.Site)
//		case peachstar.StatsEvent:
//			log.Printf("%d execs, %d edges", ev.Stats.Execs, ev.Stats.Edges)
//		}
//	}
//
// The stream closes when the run finishes, so ranging over it doubles as
// a completion wait.
type Event interface {
	// event marks the closed set of stream item types.
	event()
}

// StatsEvent is a periodic campaign progress snapshot, emitted every
// RunConfig.StatsEvery executions (and once more, final, as the stream
// closes). Stats carries the approximate concurrent-safe counters of
// Run.Snapshot: execution and path counters as of each worker's latest
// merge window, crash figures exact; the final event is taken after the
// fleet has quiesced and is exact.
type StatsEvent struct {
	// Stats is the snapshot; see Run.Snapshot for which counters are
	// exact and which lag by up to one merge window.
	Stats Stats
	// Elapsed is the wall-clock time since Start.
	Elapsed time.Duration
}

func (StatsEvent) event() {}

// NewCoverageEvent reports that a merge window grew the fleet's union
// coverage map — the "the campaign is still learning" signal.
type NewCoverageEvent struct {
	// Edges is the union edge count after the window.
	Edges int
	// Delta is how many previously-virgin edges the window lit.
	Delta int
	// Worker indexes the worker whose window published the growth.
	Worker int
}

func (NewCoverageEvent) event() {}

// CrashEvent reports one unique fault, emitted at the end of the merge
// window in which a worker first recorded it and deduplicated fleet-wide
// (the same fault found concurrently by two workers is reported once).
// Crash events are never dropped by the stream's backpressure policy:
// when the buffer is full, older non-crash events are evicted instead.
// Crashes that arrive from remote fleet nodes over a sync attachment are
// merged into campaign state but not replayed as events — each node
// reports what it found itself.
type CrashEvent struct {
	// Record is the deduplicated fault (a detached copy).
	Record *CrashRecord
	// Worker indexes the worker that found it.
	Worker int
}

func (CrashEvent) event() {}

// DistillEvent reports one corpus distillation of an adaptive campaign
// (Options.Adaptive / RunConfig.Adaptive): a worker computed the greedy
// minimal covering set over its tracked valuable seeds' edge sets and
// pruned the puzzles of the seeds outside the cover. Emitted at the end
// of the merge window in which the distillation ran.
type DistillEvent struct {
	// Worker indexes the worker that distilled its corpus.
	Worker int
	// SeedsKept and SeedsDropped partition the worker's tracked seeds:
	// the kept ones cover the union edge set.
	SeedsKept    int
	SeedsDropped int
	// PuzzlesDropped is how many corpus puzzles the pruning removed.
	PuzzlesDropped int
	// Edges is the union edge-set size the cover preserves.
	Edges int
}

func (DistillEvent) event() {}

// StateEvent reports that a session campaign (Options.Sessions /
// Options.StateModel) reached a protocol state for the first time — the
// state-machine analogue of NewCoverageEvent. Emitted at the end of the
// merge window in which a worker first sent a message from the state; on
// a multi-worker fleet each worker reports its own first reach.
type StateEvent struct {
	// State is the reached state's name in the campaign's StateModel.
	State string
	// Exec is the worker's execution count when the state was reached.
	Exec int
	// Worker indexes the worker that reached it.
	Worker int
}

func (StateEvent) event() {}

// SyncWindowEvent reports one remote sync exchange of a leaf or mesh
// attachment: the push/pull round trip that merges this campaign's
// discoveries with the rest of the fleet. Err is nil on success; a failed
// exchange is not fatal (the campaign keeps fuzzing and the next window
// retries), so errors surface here rather than ending the run.
type SyncWindowEvent struct {
	// Attachment names the attachment kind: "leaf" or "mesh".
	Attachment string
	// Addr is the attachment's remote address (the hub address for a
	// leaf; the node's own accept address for a mesh, whose exchanges
	// fan out to every linked peer).
	Addr string
	// Execs is the campaign's local execution count when the window ran.
	Execs int
	// Elapsed is the exchange's duration.
	Elapsed time.Duration
	// Err is the exchange error, nil on success.
	Err error
}

func (SyncWindowEvent) event() {}

// CheckpointEvent reports one durable campaign checkpoint of a session
// with RunConfig.CheckpointPath set: the atomic write of the campaign's
// full state taken at a quiescent merge-window boundary. Err is nil on
// success; a failed write is not fatal (the campaign keeps fuzzing and
// the next checkpoint retries), so errors surface here rather than
// ending the run.
type CheckpointEvent struct {
	// Path is the checkpoint file written (RunConfig.CheckpointPath).
	Path string
	// Execs is the campaign execution count the checkpoint captures.
	Execs int
	// Bytes is the checkpoint's encoded size.
	Bytes int
	// Elapsed is the snapshot-and-write duration.
	Elapsed time.Duration
	// Err is the write error, nil on success.
	Err error
}

func (CheckpointEvent) event() {}

// emit delivers one event to the stream without ever blocking a worker:
// if the buffer is full, the oldest *droppable* event is evicted to make
// room — buffered CrashEvents are re-queued, never dropped, so a stalled
// consumer degrades the stream to "recent progress plus every crash".
//
// Every producer holds emitMu for the whole call — there is deliberately
// no lock-free fast path. That is the invariant that makes the
// evict-or-requeue dance safe: after this producer pops an element, the
// freed slot cannot be filled by anyone else (other producers wait on
// the mutex; the consumer only removes), so re-queuing a popped crash
// with a plain send can never block. Only a buffer holding nothing but
// crash events overflows crashes, and then oldest-first — memory stays
// bounded by the buffer either way.
func (r *Run) emit(ev Event) {
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	_, isCrash := ev.(CrashEvent)
	// A crash may pop at most the whole buffer of other crashes before
	// force-dropping the oldest; droppable events give up after one pop.
	for requeued := 0; ; {
		select {
		case r.events <- ev:
			return
		default:
		}
		select {
		case old := <-r.events:
			if _, c := old.(CrashEvent); c && requeued < cap(r.events) {
				r.events <- old // slot just freed; cannot block under emitMu
				requeued++
				if !isCrash {
					return // the front was a crash: drop ev itself instead
				}
				continue
			}
		default:
		}
		if !isCrash {
			select {
			case r.events <- ev:
			default:
			}
			return
		}
	}
}
