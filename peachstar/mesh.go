package peachstar

// This file is the public face of hub-less mesh campaigns
// (internal/fleetnet's Mesh): every node runs the sync accept loop AND
// keeps uplinks to its peers, so the fleet survives the loss of any single
// node and sync bandwidth scales with links instead of flowing through one
// box. See ARCHITECTURE.md "Mesh topology" and the README "Mesh
// campaigns" section.

import (
	"time"

	"repro/internal/fleetnet"
)

// MeshOptions configures a campaign's mesh membership.
type MeshOptions struct {
	// Listen is the accept-loop address (host:port; ":0" picks a free
	// port — see MeshNode.Addr).
	Listen string
	// Peers are the bootstrap peer addresses. One live address is enough
	// to join an existing mesh: the handshake peer exchange supplies the
	// rest. Empty for the first node of a new mesh.
	Peers []string
	// Advertise is the address other nodes should dial to reach this
	// node. Defaults to the bound listener address, which is right when
	// Listen names a routable interface; override it when the bind
	// address is not what peers can dial (":7712", NAT, containers).
	Advertise string
	// StaticOnly restricts uplinks to the configured Peers — learned
	// addresses are relayed onward but not dialed — for fixed topologies
	// (rings, lines) where the shape is the experiment.
	StaticOnly bool
}

// MeshNode is one campaign's membership in a hub-less mesh fleet.
type MeshNode struct {
	c    *Campaign
	mesh *fleetnet.Mesh
}

// JoinMesh makes this campaign a mesh node: it starts accepting peer
// connections on opts.Listen and will keep uplinks to every known peer.
// Drive the campaign through the returned node's RunSynced /
// RunSyncedUntil (or Run segments interleaved with Sync); remote and local
// discoveries converge through the same merge path a hub fleet uses, with
// one session per link instead of one hub holding them all.
//
// Give each node of a mesh a distinct Options.SeedStream so no two hosts
// fuzz the same RNG streams of the shared campaign seed.
func (c *Campaign) JoinMesh(opts MeshOptions) (*MeshNode, error) {
	mesh, err := fleetnet.NewMesh(fleetnet.MeshConfig{
		Fleet:      c.fleet,
		Target:     c.cfg.Target.(Target).Name(),
		Models:     c.cfg.Models,
		Advertise:  opts.Advertise,
		Peers:      opts.Peers,
		StaticOnly: opts.StaticOnly,
	})
	if err != nil {
		return nil, err
	}
	if err := mesh.ListenAndServe(opts.Listen); err != nil {
		return nil, err
	}
	return &MeshNode{c: c, mesh: mesh}, nil
}

// Addr returns the node's bound accept-loop address.
func (m *MeshNode) Addr() string { return m.mesh.Addr() }

// AddPeer adds one peer address at runtime (kept permanently, like a
// configured peer); the next sync window dials it.
func (m *MeshNode) AddPeer(addr string) { m.mesh.AddPeer(addr) }

// Sync runs one merge window with every linked peer: push local
// discoveries, pull theirs. Safe to call between Run segments; individual
// link failures reset only that link's session, and the first error is
// returned for logging.
func (m *MeshNode) Sync() error { return m.mesh.Sync() }

// RunSynced fuzzes until the campaign has spent execBudget total
// executions, syncing with the mesh every syncEvery executions (0 picks a
// default of four merge windows). Link failures are tolerated: fuzzing
// continues and the next window retries. The final sync's error, if any,
// is returned; local results are intact regardless.
//
// Deprecated: use Campaign.Start with a mesh attached — either
// RunConfig{Attach: []Attachment{WithMesh(opts)}} for a session-owned
// node, or this handle's Attachment() to keep it across sessions.
func (m *MeshNode) RunSynced(execBudget, syncEvery int) error {
	if execBudget <= 0 {
		return m.Sync() // budget already spent: just the final flush
	}
	return runAttached(m.c, RunConfig{Execs: execBudget, SyncEvery: syncEvery}, m.Attachment())
}

// RunSyncedUntil is RunSynced with a wall-clock deadline instead of an
// exec budget, stopping within one merge-window slice of the deadline.
//
// Deprecated: use Campaign.Start with a Deadline and a mesh attached
// (see RunSynced).
func (m *MeshNode) RunSyncedUntil(deadline time.Time, syncEvery int) error {
	if deadline.IsZero() {
		return m.Sync() // no deadline to honor: just the final flush
	}
	return runAttached(m.c, RunConfig{Deadline: deadline, SyncEvery: syncEvery}, m.Attachment())
}

// PeerStats reports the node's connectivity: connected uplinks, connected
// inbound peer sessions, and how many peer addresses it knows.
func (m *MeshNode) PeerStats() (uplinks, inbound, known int) {
	return m.mesh.PeerStats()
}

// RemoteExecs sums the executions peers have reported over inbound
// sessions — this node's window into work it did not do itself.
func (m *MeshNode) RemoteExecs() int { return m.mesh.RemoteExecs() }

// Close leaves the mesh: uplinks are closed, the accept loop stops. The
// campaign and everything already merged stay intact; the surviving nodes
// keep converging over their remaining links, and a replacement node can
// bootstrap back in from any live peer.
func (m *MeshNode) Close() error { return m.mesh.Close() }
