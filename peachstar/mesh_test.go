package peachstar

import (
	"testing"
)

// TestJoinMeshLoopback is the public-API smoke test for hub-less
// campaigns: two mesh nodes on loopback — the second bootstrapping from
// the first's address — fuzz real libmodbus streams and settle on one
// union edge count with no hub anywhere.
func TestJoinMeshLoopback(t *testing.T) {
	campA := newSyncCampaign(t, 0)
	nodeA, err := campA.JoinMesh(MeshOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	campB := newSyncCampaign(t, 1)
	nodeB, err := campB.JoinMesh(MeshOptions{Listen: "127.0.0.1:0", Peers: []string{nodeA.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	if err := nodeB.RunSynced(6000, 1024); err != nil {
		t.Fatal(err)
	}
	if err := nodeA.RunSynced(6000, 1024); err != nil {
		t.Fatal(err)
	}
	// Settlement: one more window each so the last finisher's material
	// reaches the other node.
	for _, n := range []*MeshNode{nodeB, nodeA} {
		if err := n.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	sa, sb := campA.Stats(), campB.Stats()
	if sa.Edges == 0 || sa.Edges != sb.Edges {
		t.Fatalf("mesh did not settle: node A %d edges, node B %d", sa.Edges, sb.Edges)
	}
	if nodeA.RemoteExecs() < 6000 {
		t.Fatalf("node A heard of %d remote execs, want >= 6000", nodeA.RemoteExecs())
	}
	_, inbound, _ := nodeA.PeerStats()
	uplinks, _, known := nodeB.PeerStats()
	if inbound < 1 || uplinks < 1 || known < 1 {
		t.Fatalf("mesh links missing: A inbound %d, B uplinks %d known %d", inbound, uplinks, known)
	}
}
