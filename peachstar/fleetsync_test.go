package peachstar

import (
	"testing"
)

// newSyncCampaign builds a campaign on the given seed stream for the
// distributed-API tests.
func newSyncCampaign(t *testing.T, stream int) *Campaign {
	t.Helper()
	tgt, err := NewTarget("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(Options{
		Target:     tgt,
		Strategy:   PeachStar,
		Seed:       5,
		SeedStream: stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeAndDialSync is the public-API smoke test for distributed
// campaigns: a hub campaign and a leaf campaign on loopback exchange state
// until both report the same edge union.
func TestServeAndDialSync(t *testing.T) {
	hubCampaign := newSyncCampaign(t, 0)
	srv, err := hubCampaign.ServeSync("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	leafCampaign := newSyncCampaign(t, 1)
	leaf, err := leafCampaign.DialSync(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	hubCampaign.Run(8000)
	if err := leaf.RunSynced(8000, 1024); err != nil {
		t.Fatal(err)
	}
	if !leaf.Connected() {
		t.Fatal("leaf should hold a session after RunSynced")
	}
	// One more hub-side flush so the hub campaign's workers pull what the
	// leaf pushed, then a final leaf window to settle both directions.
	hubCampaign.Run(hubCampaign.Execs() + 256)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}

	rexecs, _, connected := srv.RemoteStats()
	if rexecs < 8000 || connected != 1 {
		t.Fatalf("hub remote stats = (%d execs, %d connected), want (>=8000, 1)", rexecs, connected)
	}
	fexecs, fedges, leaves, ok := leaf.FleetStats()
	if !ok || leaves != 1 {
		t.Fatalf("leaf fleet stats = (%d, %d, %d, %v)", fexecs, fedges, leaves, ok)
	}
	if got, want := leafCampaign.Stats().Edges, fedges; got != want {
		t.Fatalf("leaf campaign edges = %d, hub union = %d after settlement", got, want)
	}
}

// TestDialSyncRejectsHubLessAddress: dialing a dead address fails on the
// first sync, not at DialSync time, and the campaign remains usable.
func TestDialSyncRejectsHubLessAddress(t *testing.T) {
	c := newSyncCampaign(t, 0)
	leaf, err := c.DialSync("127.0.0.1:1") // nothing listens on port 1
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	c.Run(512)
	if err := leaf.Sync(); err == nil {
		t.Fatal("sync against a dead hub should fail")
	}
	if c.Stats().Execs < 512 {
		t.Fatal("campaign lost progress over a failed sync")
	}
}
