package peachstar

import (
	"context"
	"testing"
)

// TestAdaptiveSessionDeliversDistillEvents: an adaptive campaign surfaces
// the scheduler through the session API — DistillEvents arrive once the
// campaign crosses the distillation cadence, and the final stats carry the
// per-mutator accounting.
func TestAdaptiveSessionDeliversDistillEvents(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 4, Adaptive: true})
	r, err := c.Start(context.Background(), RunConfig{Execs: 40000, EventBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var distills []DistillEvent
	for ev := range r.Events() {
		if d, ok := ev.(DistillEvent); ok {
			distills = append(distills, d)
		}
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}

	if len(distills) == 0 {
		t.Fatal("40000 adaptive executions emitted no DistillEvent (cadence is 32768)")
	}
	for _, d := range distills {
		if d.Worker != 0 {
			t.Fatalf("serial campaign reported distillation on worker %d", d.Worker)
		}
		if d.SeedsKept <= 0 || d.Edges <= 0 || d.SeedsDropped < 0 || d.PuzzlesDropped < 0 {
			t.Fatalf("malformed DistillEvent %+v", d)
		}
	}

	s := c.Stats()
	if s.Distills != len(distills) {
		t.Fatalf("Stats.Distills = %d, stream delivered %d", s.Distills, len(distills))
	}
	if len(s.MutatorStats) == 0 {
		t.Fatal("adaptive campaign has no MutatorStats")
	}
	var trials uint64
	for _, ms := range s.MutatorStats {
		trials += ms.Trials
	}
	if trials == 0 {
		t.Fatal("MutatorStats recorded no trials")
	}
}

// TestAdaptiveOffNoSchedulerSurface: a default campaign exposes none of
// the scheduler's surface — no events, no stats fields.
func TestAdaptiveOffNoSchedulerSurface(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 4})
	r, err := c.Start(context.Background(), RunConfig{Execs: 5000, EventBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for ev := range r.Events() {
		if _, ok := ev.(DistillEvent); ok {
			t.Fatal("non-adaptive campaign emitted a DistillEvent")
		}
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.MutatorStats != nil || s.Distills != 0 {
		t.Fatalf("non-adaptive stats carry scheduler state: %+v", s)
	}
}

// TestAdaptiveRunConfigUpgrade: RunConfig.Adaptive switches an existing
// campaign's scheduler on at session start — and the upgrade is sticky for
// later sessions, as documented.
func TestAdaptiveRunConfigUpgrade(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 9})
	r, err := c.Start(context.Background(), RunConfig{Execs: 6000, Adaptive: true, EventBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for range r.Events() {
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.Stats().MutatorStats) == 0 {
		t.Fatal("RunConfig.Adaptive did not enable the scheduler")
	}

	// A follow-up session without the flag keeps the scheduler on.
	r, err = c.Start(context.Background(), RunConfig{Execs: 12000, EventBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for range r.Events() {
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	var trials uint64
	for _, ms := range c.Stats().MutatorStats {
		trials += ms.Trials
	}
	if trials == 0 {
		t.Fatal("scheduler state did not persist across sessions")
	}
}
