package peachstar

// This file is the public surface of durable campaign checkpoints: the
// blocking Campaign.Checkpoint / Campaign.RestoreCheckpoint pair for
// quiescent campaigns, and the periodic in-session checkpointing that
// RunConfig.CheckpointPath switches on (driven from the session loop at
// merge-window boundaries, reported as CheckpointEvents).
//
// A checkpoint file is one atomic snapshot of the whole campaign — fleet
// counters, union coverage, corpus with its sync journal, crash bank with
// reproducers, adaptive-scheduler tables, session state, and every
// worker's RNG position — sealed under the campaign's model digest. A
// warm restart builds the same campaign (same target, models, workers)
// and restores the file; restoring under different data models is
// refused. Writes are crash-safe (temp file + rename), so a kill -9 at
// any instant leaves either the previous checkpoint or the new one,
// never a torn file.

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fleetnet"
)

// DefaultCheckpointEvery is the default number of fleet executions between
// durable checkpoints of a session with RunConfig.CheckpointPath set:
// sixteen merge windows' worth.
const DefaultCheckpointEvery = 16 * core.DefaultMergeEvery

// modelDigest is the campaign's rule-signature digest — the identity a
// checkpoint is sealed under and validated against on restore. It is the
// same digest the fleet sync protocol pins, so "restorable from" and
// "syncable with" are one compatibility notion.
func (c *Campaign) modelDigest() uint64 {
	return fleetnet.ModelDigest(c.cfg.Target.(Target).Name(), c.cfg.Models)
}

// Checkpoint writes the campaign's full state to path, crash-safely
// (atomic temp-file-and-rename replace). The campaign must be quiescent:
// checkpointing while a session is in flight is an error. For periodic
// checkpoints during a run, set RunConfig.CheckpointPath instead.
func (c *Campaign) Checkpoint(path string) error {
	if !atomic.CompareAndSwapInt32(&c.running, 0, 1) {
		return fmt.Errorf("peachstar: cannot checkpoint: campaign has a session in flight")
	}
	defer atomic.StoreInt32(&c.running, 0)
	return checkpoint.WriteFileAtomic(path, c.fleet.Checkpoint(c.modelDigest()))
}

// RestoreCheckpoint overwrites the campaign's state with a checkpoint file
// written by Checkpoint or a CheckpointPath session — the warm-restart
// entry point. The campaign must have been built with the same target,
// models and worker count as the one that wrote the checkpoint (the file
// carries the model digest and worker count, and restore refuses a
// mismatch), and must be quiescent. A failed restore may leave the
// campaign partially overwritten; discard it and build a fresh one.
//
// A restored campaign continues exactly where the checkpoint was taken:
// counters, coverage, corpus, crashes, scheduler state and RNG streams
// all resume, so Start with the original absolute exec budget finishes
// the remaining work. A restored node that was part of a hub or mesh
// fleet rejoins it through the normal sync path — peers whose journal
// cursors aged out of the restored horizon fall back to a full replay
// exchange and heal.
func (c *Campaign) RestoreCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !atomic.CompareAndSwapInt32(&c.running, 0, 1) {
		return fmt.Errorf("peachstar: cannot restore: campaign has a session in flight")
	}
	defer atomic.StoreInt32(&c.running, 0)
	return c.fleet.RestoreCheckpoint(data, c.modelDigest())
}

// checkpointNow takes one durable checkpoint from the session loop and
// reports it as a CheckpointEvent. Called only between Drive windows (or
// from a relay's tick), when the fleet's workers are quiescent; a write
// failure is an event, not a session error — the campaign keeps fuzzing
// and the next checkpoint retries.
func (r *Run) checkpointNow() {
	began := time.Now()
	data := r.c.fleet.Checkpoint(r.c.modelDigest())
	err := checkpoint.WriteFileAtomic(r.cfg.CheckpointPath, data)
	r.emit(CheckpointEvent{
		Path:    r.cfg.CheckpointPath,
		Execs:   r.c.fleet.Execs(),
		Bytes:   len(data),
		Elapsed: time.Since(began),
		Err:     err,
	})
}
