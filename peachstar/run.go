package peachstar

// This file is the session-based run API — the one driver every execution
// topology goes through. A Campaign used to grow a new blocking Run*
// method per topology (serial Run, sharded RunParallel, hub-leaf
// RunSynced, mesh RunSynced); Start replaces them all with one
// context-aware entry point: the budget, the sync cadence and the
// network attachments travel in a RunConfig, and the returned Run is a
// handle the caller can wait on, stop, snapshot, and observe through a
// typed event stream. The deprecated methods survive as thin wrappers
// over Start, which pins their equivalence.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/executor"
)

// DefaultSyncEvery is the default number of local executions between
// remote sync windows of an attached (leaf or mesh) campaign: four merge
// windows' worth.
const DefaultSyncEvery = 4 * core.DefaultMergeEvery

// DefaultStatsEvery is the default number of fleet executions between
// StatsEvents on a run's event stream.
const DefaultStatsEvery = 4 * core.DefaultMergeEvery

// DefaultEventBuffer is the default capacity of a run's event channel.
const DefaultEventBuffer = 256

// DefaultRelayEvery is the default wall-clock cadence of a RelayOnly
// session's sync rounds (a relay has no execution count to pace by).
const DefaultRelayEvery = 5 * time.Second

// RunConfig configures one campaign session started with Campaign.Start.
// The zero value is valid and means: fuzz with no execution or time bound
// (the session then runs until the context ends or Stop is called),
// default cadences, no attachments.
type RunConfig struct {
	// Execs is the total campaign execution target, in the same absolute
	// terms the deprecated Run used: the session drives the fleet until
	// at least this many executions have happened since the campaign was
	// created (so extending a campaign with a second session reuses the
	// same scale). 0 means no execution bound.
	Execs int
	// Deadline, when non-zero, stops the session at that wall-clock
	// instant, checked before every engine step like RunUntil checked it.
	Deadline time.Time
	// Duration, when positive and Deadline is zero, is a relative
	// deadline of Start-time + Duration.
	Duration time.Duration
	// SyncEvery is the number of local executions between remote sync
	// windows when the session has leaf or mesh attachments
	// (0 = DefaultSyncEvery). Ignored without attachments.
	SyncEvery int
	// StatsEvery is the number of fleet executions between StatsEvents
	// on the event stream (0 = DefaultStatsEvery; negative disables
	// periodic stats, leaving only the final one).
	StatsEvery int
	// EventBuffer is the event channel's capacity
	// (0 = DefaultEventBuffer). When the buffer is full the oldest
	// event is dropped — except crashes, which evict older events
	// instead. See Run.Events.
	EventBuffer int
	// Attach lists the session's sync attachments, composably: serve
	// this campaign to remote leaves (WithHub), uplink it to a hub
	// (WithLeaf), mesh it with peers (WithMesh) — or drive an existing
	// SyncServer/SyncLeaf/MeshNode handle through its Attachment method.
	// Attachments created by WithHub/WithLeaf/WithMesh belong to the
	// session and are closed when it ends; borrowed handles are left
	// open for their owner.
	Attach []Attachment
	// RelayOnly makes the session execute nothing itself: the workers
	// stay idle while the session serves its attachments — accepting
	// hub or mesh peers and relaying fleet state between them every
	// RelayEvery — until the context ends, Stop is called, or the
	// deadline passes. For aggregator hubs and pure mesh relays.
	RelayOnly bool
	// RelayEvery is the wall-clock cadence of a RelayOnly session's
	// sync-and-report rounds (0 = DefaultRelayEvery). Ignored unless
	// RelayOnly is set.
	RelayEvery time.Duration
	// Adaptive switches the campaign's adaptive scheduler on before the
	// session starts (see Options.Adaptive) — for enabling it on a later
	// session of a campaign built without it. Enabling is permanent for
	// the campaign; false leaves the campaign's current mode unchanged
	// (it never switches the scheduler back off).
	Adaptive bool
	// Exec selects the session's execution backend: nil (the default)
	// fuzzes the campaign's in-process target exactly as always, while
	// WithProcTarget spawns and supervises a real server process for the
	// lifetime of the session — the campaign's coverage, corpus and crash
	// state carry across backend boundaries, so an in-process warmup
	// session can precede a real-target one. Process-backed sessions
	// require a single-worker campaign; the backend is closed (the target
	// killed) when the session ends. If the backend fails unrecoverably
	// mid-session (spawn retries exhausted), the session ends early and
	// Wait returns the failure.
	Exec ExecBackend
	// CheckpointPath, when non-empty, makes the session write a durable
	// campaign checkpoint to this file every CheckpointEvery executions,
	// after the final window, and (for a relay) every relay round — each
	// write an atomic replace, reported as a CheckpointEvent. A later
	// campaign built with the same options resumes from the file with
	// Campaign.RestoreCheckpoint (or peachstar -resume).
	CheckpointPath string
	// CheckpointEvery is the number of fleet executions between durable
	// checkpoints (0 = DefaultCheckpointEvery). Ignored without
	// CheckpointPath.
	CheckpointEvery int
}

// Attachment composes a fleet transport into a session: something a run
// serves, dials, or exchanges state with at its sync cadence. Build them
// with WithHub, WithLeaf or WithMesh (session-owned), or borrow a live
// SyncServer, SyncLeaf or MeshNode via its Attachment method.
type Attachment interface {
	// attach binds the attachment to the campaign under the session's
	// context and returns its runtime half.
	attach(ctx context.Context, c *Campaign) (runAttachment, error)
}

// runAttachment is the runtime half of an Attachment: what the session
// loop actually drives.
type runAttachment interface {
	kind() string                   // "hub" | "leaf" | "mesh", for events
	addr() string                   // remote (leaf) or serving (hub/mesh) address
	active() bool                   // participates in the sync cadence (hubs are passive)
	sync(ctx context.Context) error // one remote merge window
	close() error                   // session-end cleanup; no-op when borrowed
}

// WithHub returns an attachment that serves the campaign's shared state
// to remote leaves on addr (host:port, ":0" picks a free port) for the
// lifetime of the session. The hub accepts and exchanges in the
// background; canceling the session's context tears every peer
// connection down promptly.
func WithHub(addr string) Attachment { return hubSpec{listen: addr} }

// WithLeaf returns an attachment that uplinks the campaign to the fleet
// hub at addr, pushing local discoveries and pulling the fleet's every
// RunConfig.SyncEvery executions. Connection loss only pauses exchange —
// the campaign keeps fuzzing and later windows redial. The uplink closes
// with the session.
func WithLeaf(addr string) Attachment { return leafSpec{addr: addr} }

// WithMesh returns an attachment that makes the campaign a node of a
// hub-less mesh fleet for the lifetime of the session, accepting peers
// on opts.Listen and keeping uplinks to every known peer, with one merge
// round per RunConfig.SyncEvery executions.
func WithMesh(opts MeshOptions) Attachment { return meshSpec{opts: opts} }

// hubSpec builds a session-owned hub.
type hubSpec struct{ listen string }

func (s hubSpec) attach(ctx context.Context, c *Campaign) (runAttachment, error) {
	srv, err := c.serveSync(ctx, s.listen)
	if err != nil {
		return nil, err
	}
	return &hubRun{srv: srv, owned: true}, nil
}

// leafSpec builds a session-owned leaf uplink.
type leafSpec struct{ addr string }

func (s leafSpec) attach(_ context.Context, c *Campaign) (runAttachment, error) {
	leaf, err := c.DialSync(s.addr)
	if err != nil {
		return nil, err
	}
	return &leafRun{l: leaf, remote: s.addr, owned: true}, nil
}

// meshSpec builds a session-owned mesh node.
type meshSpec struct{ opts MeshOptions }

func (s meshSpec) attach(_ context.Context, c *Campaign) (runAttachment, error) {
	node, err := c.JoinMesh(s.opts)
	if err != nil {
		return nil, err
	}
	return &meshRun{m: node, owned: true}, nil
}

// hubRun is a hub attachment at runtime: passive (remote leaves sync
// themselves through the accept loop), it only needs closing.
type hubRun struct {
	srv   *SyncServer
	owned bool
}

func (h *hubRun) kind() string               { return "hub" }
func (h *hubRun) addr() string               { return h.srv.Addr() }
func (h *hubRun) active() bool               { return false }
func (h *hubRun) sync(context.Context) error { return nil }
func (h *hubRun) close() error {
	if !h.owned {
		return nil
	}
	return h.srv.Close()
}

// leafRun is a leaf attachment at runtime.
type leafRun struct {
	l      *SyncLeaf
	remote string
	owned  bool
}

func (l *leafRun) kind() string                   { return "leaf" }
func (l *leafRun) addr() string                   { return l.remote }
func (l *leafRun) active() bool                   { return true }
func (l *leafRun) sync(ctx context.Context) error { return l.l.leaf.SyncContext(ctx) }
func (l *leafRun) close() error {
	if !l.owned {
		return nil
	}
	return l.l.Close()
}

// meshRun is a mesh attachment at runtime.
type meshRun struct {
	m     *MeshNode
	owned bool
}

func (m *meshRun) kind() string                   { return "mesh" }
func (m *meshRun) addr() string                   { return m.m.Addr() }
func (m *meshRun) active() bool                   { return true }
func (m *meshRun) sync(ctx context.Context) error { return m.m.mesh.SyncContext(ctx) }
func (m *meshRun) close() error {
	if !m.owned {
		return nil
	}
	return m.m.Close()
}

// Attachment adapts a live sync server into a session attachment. The
// session serves through it but does not own it: it stays open when the
// session ends, so one hub can span several sessions (fuzz phases,
// relay phases) on the same campaign.
func (s *SyncServer) Attachment() Attachment { return borrowedAttachment{a: &hubRun{srv: s}} }

// Attachment adapts a live leaf uplink into a session attachment: the
// session syncs it at the configured cadence but does not close it, so
// the caller keeps the handle (FleetStats, Connected) across sessions.
func (l *SyncLeaf) Attachment() Attachment {
	return borrowedAttachment{a: &leafRun{l: l, remote: l.leaf.Addr()}}
}

// Attachment adapts a live mesh node into a session attachment: the
// session runs the node's sync rounds but does not close it, so the
// caller keeps the handle (Addr, PeerStats, AddPeer) across sessions.
func (m *MeshNode) Attachment() Attachment { return borrowedAttachment{a: &meshRun{m: m}} }

// borrowedAttachment wraps a prebuilt runAttachment whose lifecycle the
// caller owns.
type borrowedAttachment struct{ a runAttachment }

func (b borrowedAttachment) attach(context.Context, *Campaign) (runAttachment, error) {
	return b.a, nil
}

// Run is one live campaign session started by Campaign.Start: a handle to
// wait on (Wait, Done), stop (Stop), and observe (Snapshot, Events)
// while the fleet fuzzes in the background.
type Run struct {
	c     *Campaign
	cfg   RunConfig
	ctx   context.Context
	start time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	events   chan Event
	// emitMu serializes producers of the event channel so buffer
	// eviction can re-queue crash events atomically (see emit).
	emitMu sync.Mutex
	// ctxStopped records (0/1) that the context — not the budget or a
	// graceful Stop — ended the session; only then does Wait surface the
	// context's error.
	ctxStopped int32

	atts    []runAttachment
	syncers []runAttachment

	// exec is the session-owned execution backend swapped into the fleet
	// for this session (nil for default in-process sessions); prevExec is
	// what it displaced, restored when the session ends.
	exec     executor.Executor
	prevExec executor.Executor

	// statsNext is the next fleet-exec threshold that emits a StatsEvent
	// (atomic: window hooks race on it across workers).
	statsNext int64

	// crashMu guards crashSeen, the fleet-level crash deduplication for
	// CrashEvents (workers may find the same fault independently).
	crashMu   sync.Mutex
	crashSeen map[string]bool

	// err is the session result, written before done closes.
	err error
}

// Start begins a session on the campaign and returns immediately with its
// handle; the fleet fuzzes on background goroutines. The session ends
// when the RunConfig budget (execs and/or deadline) is spent, the context
// is canceled, or Stop is called — whichever comes first — and Wait
// reports how it went. Cancellation is prompt: workers stop at the next
// merge-window boundary and a remote exchange in flight is interrupted
// rather than timed out. One session runs at a time; starting a second
// before the first is done is an error.
//
// A session with neither an exec target nor a deadline runs until
// canceled or stopped. A graceful Stop still flushes attachments with a
// final sync window; a context cancellation skips the flush and tears
// down immediately, and Wait then returns the context's error.
func (c *Campaign) Start(ctx context.Context, cfg RunConfig) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !atomic.CompareAndSwapInt32(&c.running, 0, 1) {
		return nil, fmt.Errorf("peachstar: campaign already has a session in flight")
	}
	if cfg.Deadline.IsZero() && cfg.Duration > 0 {
		cfg.Deadline = time.Now().Add(cfg.Duration)
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	if cfg.StatsEvery == 0 {
		cfg.StatsEvery = DefaultStatsEvery
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = DefaultEventBuffer
	}
	if cfg.RelayEvery <= 0 {
		cfg.RelayEvery = DefaultRelayEvery
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.Adaptive {
		// Safe here: the one-session invariant holds (CAS above) and the
		// fleet is quiescent until loop() starts driving it.
		c.fleet.EnableAdaptive()
	}
	r := &Run{
		c:         c,
		cfg:       cfg,
		ctx:       ctx,
		start:     time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		events:    make(chan Event, cfg.EventBuffer),
		statsNext: int64(cfg.StatsEvery),
		crashSeen: make(map[string]bool),
	}
	if cfg.StatsEvery < 0 {
		r.statsNext = int64(^uint64(0) >> 2) // periodic stats disabled
	}
	for _, a := range cfg.Attach {
		att, err := a.attach(ctx, c)
		if err != nil {
			for _, prev := range r.atts {
				prev.close()
			}
			atomic.StoreInt32(&c.running, 0)
			return nil, err
		}
		r.atts = append(r.atts, att)
		if att.active() {
			r.syncers = append(r.syncers, att)
		}
	}
	if cfg.Exec != nil {
		fail := func(err error) (*Run, error) {
			for _, prev := range r.atts {
				prev.close()
			}
			atomic.StoreInt32(&c.running, 0)
			return nil, err
		}
		ex, err := cfg.Exec.build(c)
		if err != nil {
			return fail(err)
		}
		prev, err := c.fleet.SwapExecutor(ex)
		if err != nil {
			ex.Close()
			return fail(err)
		}
		r.exec, r.prevExec = ex, prev
	}
	go r.loop()
	return r, nil
}

// Wait blocks until the session ends and returns its result: nil on a
// spent budget or a graceful Stop, the context's error if the context
// ended the session, or the final sync flush's error for an attached
// session whose last exchange failed (matching the deprecated
// RunSynced contract). Wait may be called any number of times, from any
// goroutine.
func (r *Run) Wait() error {
	<-r.done
	return r.err
}

// Stop requests a graceful end of the session: workers finish their
// in-flight merge windows, attachments get a final flush, and Wait
// returns nil. Safe to call repeatedly and concurrently; after the
// session is done it is a no-op.
func (r *Run) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// Done returns a channel closed when the session has fully ended
// (workers stopped, attachments flushed and closed) — the select-friendly
// form of Wait.
func (r *Run) Done() <-chan struct{} { return r.done }

// Events returns the session's typed event stream: StatsEvent,
// NewCoverageEvent, CrashEvent, DistillEvent, StateEvent,
// SyncWindowEvent and CheckpointEvent items, emitted at
// merge-window granularity and closed when the session ends. The stream
// observes the campaign; it never perturbs it: events are produced
// without blocking the fuzzing loop, and when a slow consumer lets the
// buffer fill, the oldest events are dropped — except CrashEvents, which
// are always retained (older events are evicted to make room). Consume
// promptly (or not at all: an unread stream costs one fixed buffer).
func (r *Run) Events() <-chan Event { return r.events }

// Snapshot returns the campaign's progress without stopping it — safe to
// call from any goroutine at any time. Counters are approximate while
// the fleet runs: executions, paths and iteration counts are as of each
// worker's latest merge window (at most one window behind), and the edge
// and corpus figures are the fleet union as of the latest window; crash
// and hang counts are exact at all times. Once the session is done the
// snapshot is exact. For the exact-but-blocking alternative, use
// Campaign.Stats after Wait.
func (r *Run) Snapshot() Stats { return r.c.fleet.StatsApprox() }

// loop is the session driver, on its own goroutine.
func (r *Run) loop() {
	defer func() {
		if r.exec != nil {
			// Restore the displaced backend (clearing any sticky backend
			// error with it) and tear the session's own down — for a
			// process backend that kills the supervised target.
			r.c.fleet.SwapExecutor(r.prevExec)
			r.exec.Close()
		}
		for _, a := range r.atts {
			a.close()
		}
		atomic.StoreInt32(&r.c.running, 0)
		close(r.done)
	}()
	if r.ctx.Done() != nil {
		go func() {
			select {
			case <-r.ctx.Done():
				r.stopForContext()
			case <-r.done:
			}
		}()
	}

	var syncErr error
	switch {
	case r.cfg.RelayOnly:
		syncErr = r.relayLoop()
	case len(r.syncers) == 0 && r.cfg.CheckpointPath == "":
		r.c.fleet.Drive(r.stop, core.Budget{Execs: r.cfg.Execs, Deadline: r.cfg.Deadline}, r.windowHook)
	default:
		syncErr = r.syncedLoop()
	}

	r.c.fleet.PublishStats()
	r.emit(StatsEvent{Stats: r.c.fleet.StatsApprox(), Elapsed: time.Since(r.start)})
	close(r.events)
	// An unrecoverable execution-backend failure trumps everything: the
	// session ended because fuzzing became impossible, and Wait must say
	// so. Read before the deferred executor restore clears it.
	if eerr := r.c.fleet.ExecError(); eerr != nil {
		r.err = eerr
		return
	}
	// The context's error is the session result only when the
	// cancellation is what ended the session: a cancel that lands after
	// the budget is already spent does not turn a completed run into a
	// failed one.
	if atomic.LoadInt32(&r.ctxStopped) == 1 && !r.budgetDone() {
		r.err = r.ctx.Err()
		return
	}
	r.err = syncErr
}

// stopForContext claims the session stop on behalf of the canceled
// context — Wait will then report the context's error. It is a no-op
// when a graceful Stop already ended the session (that Stop keeps its
// "Wait returns nil" contract). Called by the context watcher, and by
// any loop exit that observes the cancellation directly: the watcher
// goroutine may not have been scheduled yet, and the cancellation must
// not be mistaken for a clean finish.
func (r *Run) stopForContext() {
	r.stopOnce.Do(func() {
		atomic.StoreInt32(&r.ctxStopped, 1)
		close(r.stop)
	})
}

// budgetDone reports whether the session's own budget is spent — the
// exec target reached or the deadline passed. Called at session end,
// when the fleet is quiescent.
func (r *Run) budgetDone() bool {
	if r.cfg.Execs > 0 && r.c.fleet.Execs() >= r.cfg.Execs {
		return true
	}
	if !r.cfg.Deadline.IsZero() && !time.Now().Before(r.cfg.Deadline) {
		return true
	}
	return false
}

// syncedLoop drives an attached or checkpointing session: fuzz one
// window's worth of executions, then exchange with every active
// attachment and take any due durable checkpoint, until the budget is
// spent or the session is stopped; a final flush settles the remote state
// (and its error is the session result, like RunSynced's) and a final
// checkpoint captures the session's last window. Exchange and checkpoint
// failures inside the loop surface as events and the campaign keeps
// fuzzing — the next window retries. Checkpoints are taken between Drive
// calls, when every worker is quiescent, which is what makes each one a
// consistent cut of the whole fleet.
func (r *Run) syncedLoop() error {
	fleet := r.c.fleet
	ckpt := r.cfg.CheckpointPath != ""
	nextCkpt := 0
	if ckpt {
		nextCkpt = (fleet.Execs()/r.cfg.CheckpointEvery + 1) * r.cfg.CheckpointEvery
	}
	for !r.spent() {
		window := core.Budget{Execs: fleet.Execs() + r.cfg.SyncEvery, Deadline: r.cfg.Deadline}
		if ckpt && nextCkpt < window.Execs {
			window.Execs = nextCkpt
		}
		if r.cfg.Execs > 0 && window.Execs > r.cfg.Execs {
			window.Execs = r.cfg.Execs
		}
		fleet.Drive(r.stop, window, r.windowHook)
		if r.ctx.Err() != nil {
			// Canceled mid-window: don't run the exchange against a dead
			// context just to emit one canceled SyncWindowEvent per
			// attachment. Claim the stop first — this exit may observe
			// the cancellation before the watcher goroutine does.
			r.stopForContext()
			return nil
		}
		if ckpt && fleet.Execs() >= nextCkpt {
			r.checkpointNow()
			nextCkpt = (fleet.Execs()/r.cfg.CheckpointEvery + 1) * r.cfg.CheckpointEvery
		}
		r.syncAll()
	}
	if r.ctx.Err() != nil {
		// A flush against a dead context cannot succeed — skip it whether
		// the cancellation or a graceful Stop ended the session; loop()
		// decides the reported outcome from who stopped it.
		r.stopForContext()
		return nil
	}
	err := r.syncAll()
	if ckpt {
		r.checkpointNow()
	}
	return err
}

// relayLoop serves attachments without fuzzing: one sync-and-report round
// per RelayEvery tick until the session is stopped or its deadline
// passes. Like syncedLoop, a graceful end gets a final flush — a relay
// stopped right after absorbing a peer's push must hand it onward before
// shutting down — while a context cancellation skips it.
func (r *Run) relayLoop() error {
	tick := time.NewTicker(r.cfg.RelayEvery)
	defer tick.Stop()
	// The deadline gets its own wake-up: a relay sleeping out a long
	// RelayEvery period must still stop at the configured wall-clock
	// instant, not at the next tick after it.
	var deadlineCh <-chan time.Time
	if !r.cfg.Deadline.IsZero() {
		deadline := time.NewTimer(time.Until(r.cfg.Deadline))
		defer deadline.Stop()
		deadlineCh = deadline.C
	}
	var lastErr error
	for {
		if r.spent() {
			if r.ctx.Err() == nil {
				lastErr = r.syncAll() // final flush on a graceful end
				if r.cfg.CheckpointPath != "" {
					r.checkpointNow()
				}
			}
			return lastErr // a cancellation outcome is decided by loop()
		}
		select {
		case <-r.stop:
			continue // re-check spent and return
		case <-deadlineCh:
			continue // re-check spent and return
		case <-tick.C:
			lastErr = r.syncAll()
			if r.cfg.CheckpointPath != "" {
				// A relay's workers never run, so the fleet is always
				// quiescent here; the checkpoint preserves what the relay
				// absorbed from its peers.
				r.checkpointNow()
			}
			r.c.fleet.PublishStats()
			r.emit(StatsEvent{Stats: r.c.fleet.StatsApprox(), Elapsed: time.Since(r.start)})
		}
	}
}

// spent reports whether the session should end: stopped, exec budget
// reached, or deadline passed. Called between windows on the session
// goroutine only.
func (r *Run) spent() bool {
	select {
	case <-r.stop:
		return true
	default:
	}
	if r.cfg.Execs > 0 && r.c.fleet.Execs() >= r.cfg.Execs {
		return true
	}
	if !r.cfg.Deadline.IsZero() && !time.Now().Before(r.cfg.Deadline) {
		return true
	}
	return false
}

// syncAll runs one remote window on every active attachment, emitting a
// SyncWindowEvent per exchange, and returns the first error (the
// mesh/leaf convention).
func (r *Run) syncAll() error {
	var firstErr error
	for _, a := range r.syncers {
		began := time.Now()
		err := a.sync(r.ctx)
		r.emit(SyncWindowEvent{
			Attachment: a.kind(),
			Addr:       a.addr(),
			Execs:      r.c.fleet.ExecsApprox(),
			Elapsed:    time.Since(began),
			Err:        err,
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// runAttached is the deprecated RunSynced/RunSyncedUntil wrappers'
// common body: one blocking session with the given budget and a single
// borrowed attachment.
func runAttached(c *Campaign, cfg RunConfig, att Attachment) error {
	cfg.Attach = []Attachment{att}
	r, err := c.Start(context.Background(), cfg)
	if err != nil {
		return err
	}
	return r.Wait()
}

// windowHook is the driver's per-merge-window observer, called on worker
// goroutines: it turns window facts into stream events.
func (r *Run) windowHook(w core.WindowInfo) {
	for _, rec := range w.NewCrashes {
		key := crash.RecordKey(rec)
		r.crashMu.Lock()
		dup := r.crashSeen[key]
		r.crashSeen[key] = true
		r.crashMu.Unlock()
		if !dup {
			r.emit(CrashEvent{Record: rec, Worker: w.Worker})
		}
	}
	if w.NewEdges > 0 {
		r.emit(NewCoverageEvent{Edges: w.Edges, Delta: w.NewEdges, Worker: w.Worker})
	}
	for _, st := range w.NewStates {
		r.emit(StateEvent{State: st.State, Exec: st.Exec, Worker: w.Worker})
	}
	for _, d := range w.Distills {
		r.emit(DistillEvent{
			Worker:         w.Worker,
			SeedsKept:      d.SeedsKept,
			SeedsDropped:   d.SeedsDropped,
			PuzzlesDropped: d.PuzzlesDropped,
			Edges:          d.Edges,
		})
	}
	every := int64(r.cfg.StatsEvery)
	if every <= 0 {
		return
	}
	for {
		next := atomic.LoadInt64(&r.statsNext)
		if int64(w.FleetExecs) < next {
			return
		}
		// Jump past the current count so a burst of windows yields one
		// event, not a backlog.
		target := (int64(w.FleetExecs)/every + 1) * every
		if atomic.CompareAndSwapInt64(&r.statsNext, next, target) {
			r.emit(StatsEvent{Stats: r.c.fleet.StatsApprox(), Elapsed: time.Since(r.start)})
			return
		}
	}
}
