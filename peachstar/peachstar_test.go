package peachstar

import (
	"strings"
	"testing"
)

func TestTargetNamesListsSix(t *testing.T) {
	names := TargetNames()
	if len(names) != 6 {
		t.Fatalf("targets = %v", names)
	}
	for _, want := range []string{"libmodbus", "IEC104", "libiec61850", "lib60870", "libiccp", "opendnp3"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing target %s in %v", want, names)
		}
	}
}

func TestNewTargetUnknown(t *testing.T) {
	if _, err := NewTarget("nope"); err == nil {
		t.Fatal("unknown target should error")
	}
}

func TestNewCampaignValidation(t *testing.T) {
	if _, err := NewCampaign(Options{}); err == nil {
		t.Fatal("missing target should error")
	}
}

func TestCampaignRunAndStats(t *testing.T) {
	tgt, err := NewTarget("IEC104")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(Options{Target: tgt, Strategy: PeachStar, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1500)
	s := c.Stats()
	if s.Execs < 1500 || s.Paths == 0 || s.Edges == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if c.CorpusSize() == 0 {
		t.Fatal("peach* corpus empty after run")
	}
	if len(c.CorpusSignatures()) == 0 {
		t.Fatal("no corpus signatures")
	}
}

func TestCampaignStepGranularity(t *testing.T) {
	tgt, _ := NewTarget("libmodbus")
	c, err := NewCampaign(Options{Target: tgt, Strategy: Peach, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Step()
	if n != 1 {
		t.Fatalf("baseline step = %d execs", n)
	}
}

func TestCampaignCrashRecords(t *testing.T) {
	tgt, _ := NewTarget("lib60870")
	c, err := NewCampaign(Options{Target: tgt, Strategy: PeachStar, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(12000)
	for _, r := range c.Crashes() {
		if r.Site == "" || len(r.Example) == 0 || r.Count == 0 {
			t.Fatalf("malformed crash record %+v", r)
		}
	}
}

func TestModelsOverride(t *testing.T) {
	tgt, _ := NewTarget("libmodbus")
	models, err := ParsePitString(`
<Pit>
  <DataModel name="OnlyReads">
    <Number name="txn" size="16" value="1"/>
    <Number name="proto" size="16" value="0" token="true"/>
    <Number name="length" size="16"><Relation type="size" of="tail"/></Number>
    <Block name="tail">
      <Number name="unit" size="8" value="0xFF"/>
      <Number name="fc" size="8" value="3" token="true"/>
      <Number name="addr" size="16" value="0"/>
      <Number name="qty" size="16" value="4"/>
    </Block>
  </DataModel>
</Pit>`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(Options{Target: tgt, Models: models, Strategy: PeachStar, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(500)
	if c.Stats().Paths == 0 {
		t.Fatal("custom pit campaign found nothing")
	}
}

func TestBuildersRoundTrip(t *testing.T) {
	m := NewModel("demo",
		Num("op", 1, 9).AsToken(),
		Num("len", 2, 0).WithRel(SizeOf, "body", 0),
		Blk("body",
			// A variable chunk that is not last in its region needs
			// its own size relation for cracking, as in Peach.
			Num("nameLen", 1, 0).WithRel(SizeOf, "name", 0),
			StrVar("name", 1, 8, "abc"),
			Bytes("pad", 2, []byte{0, 0}),
		),
		Num("crc", 4, 0).WithFix(CRC32IEEE, "op", "len", "body"),
	)
	pkt := m.Generate().Bytes()
	if _, err := m.Crack(pkt); err != nil {
		t.Fatalf("facade-built model round trip: %v", err)
	}
	sig := RuleSignature(Num("addr", 2, 0))
	if !strings.Contains(sig, "addr") {
		t.Fatalf("signature = %q", sig)
	}
}

func TestChecksumExport(t *testing.T) {
	if Checksum(Sum8, []byte{1, 2, 3}) != 6 {
		t.Fatal("checksum export broken")
	}
	if Checksum(CRC16Modbus, []byte{0x01, 0x03, 0x00, 0x00, 0x00, 0x0A}) != 0xCDC5 {
		t.Fatal("modbus CRC export broken")
	}
}

func TestBlocksExportDeterministic(t *testing.T) {
	a := Blocks("x", 4)
	b := Blocks("x", 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Blocks not deterministic")
		}
	}
}

func TestStrategiesDiffer(t *testing.T) {
	if Peach == PeachStar {
		t.Fatal("strategy constants collide")
	}
	if Peach.String() != "Peach" || PeachStar.String() != "Peach*" {
		t.Fatalf("strategy names: %s / %s", Peach, PeachStar)
	}
}
