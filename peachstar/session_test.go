package peachstar

import (
	"context"
	"strings"
	"testing"
)

// TestSessionCampaignDeliversStateEvents pins the public session surface:
// Options.Sessions on a SessionTarget flips the campaign to sequence
// fuzzing, the event stream reports each protocol state the first time a
// worker reaches it, and the final stats carry the per-state coverage
// table alongside a non-zero sequence count.
func TestSessionCampaignDeliversStateEvents(t *testing.T) {
	tgt, err := NewTarget("IEC104")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tgt.(SessionTarget); !ok {
		t.Fatal("IEC104 target does not publish a session state model")
	}
	c := newTestCampaign(t, Options{Target: tgt, Strategy: PeachStar, Seed: 3, Sessions: true})
	r, err := c.Start(context.Background(), RunConfig{Execs: 10000, EventBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	states := make(map[string]bool)
	for ev := range r.Events() {
		if st, ok := ev.(StateEvent); ok {
			states[st.State] = true
		}
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil on a spent budget", err)
	}

	if !states["stopped"] || !states["started"] {
		t.Fatalf("StateEvents reported %v, want both IEC104 states", states)
	}
	s := c.Stats()
	if s.Sequences == 0 {
		t.Fatal("session campaign sent no sequences")
	}
	if s.StatesReached != 2 || len(s.StateCoverage) != 2 {
		t.Fatalf("stats report %d/%d states, want 2/2", s.StatesReached, len(s.StateCoverage))
	}
	for _, sc := range s.StateCoverage {
		if sc.Sent == 0 {
			t.Fatalf("state %q shows zero messages sent", sc.State)
		}
	}
}

// TestSessionOptionsValidation: Sessions without a state machine — the
// target is not a SessionTarget and Options.StateModel is nil — must fail
// at construction, not at run time.
func TestSessionOptionsValidation(t *testing.T) {
	tgt, err := NewTarget("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCampaign(Options{Target: tgt, Strategy: PeachStar, Seed: 1, Sessions: true})
	if err == nil || !strings.Contains(err.Error(), "SessionTarget") {
		t.Fatalf("NewCampaign = %v, want a SessionTarget error", err)
	}
}
