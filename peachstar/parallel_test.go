package peachstar

import (
	"reflect"
	"testing"

	"repro/internal/datamodel"
)

// customTarget is a user-defined target outside the registry: a two-field
// packet whose handler branches on the opcode byte.
type customTarget struct{}

func (customTarget) Name() string { return "custom-unregistered" }

func (customTarget) Models() []*Model {
	return []*Model{datamodel.NewModel("pkt",
		datamodel.Num("op", 1, 1),
		datamodel.BytesVar("body", 0, 8, []byte{0}),
	)}
}

func (customTarget) Handle(tr *Tracer, packet []byte) {
	ids := Blocks("custom", 4)
	tr.Hit(ids[0])
	if len(packet) > 0 && packet[0] == 1 {
		tr.Hit(ids[1])
	} else {
		tr.Hit(ids[2])
	}
}

// impostorTarget is a custom target whose Name collides with a registered
// one; the registry fallback must not clone the stock target in its place.
type impostorTarget struct{ customTarget }

func (impostorTarget) Name() string { return "libmodbus" }

func newTestCampaign(t *testing.T, opts Options) *Campaign {
	t.Helper()
	if opts.Target == nil {
		tgt, err := NewTarget("libmodbus")
		if err != nil {
			t.Fatal(err)
		}
		opts.Target = tgt
	}
	c, err := NewCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestParallelWorkers1MatchesSerialAPI: through the public API, a
// single-worker parallel run reproduces the serial campaign exactly.
func TestParallelWorkers1MatchesSerialAPI(t *testing.T) {
	serial := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 11})
	serial.Run(3000)

	parallel := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 11})
	if err := parallel.RunParallel(3000, 1); err != nil {
		t.Fatal(err)
	}

	if got, want := parallel.Stats(), serial.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RunParallel(…, 1) stats = %+v, serial Run stats = %+v", got, want)
	}
	if got, want := parallel.CorpusSize(), serial.CorpusSize(); got != want {
		t.Fatalf("corpus size %d != serial %d", got, want)
	}
}

// TestParallelCampaignRuns exercises Options.Workers end to end on a
// built-in target: the default registry-backed target factory, budget
// sharding, and aggregated stats.
func TestParallelCampaignRuns(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 2, Workers: 4})
	if c.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", c.Workers())
	}
	c.Run(6000)
	s := c.Stats()
	if s.Execs < 6000 {
		t.Fatalf("execs = %d, want >= 6000", s.Execs)
	}
	if s.Paths == 0 || s.Edges == 0 || s.CorpusPuzzles == 0 {
		t.Fatalf("campaign learned nothing: %+v", s)
	}
}

// TestParallelRebuildBeforeFirstExec: RunParallel may pick a worker count
// before anything has executed, and rejects changing it afterwards.
func TestParallelRebuildBeforeFirstExec(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 3})
	if err := c.RunParallel(2000, 2); err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", c.Workers())
	}
	if err := c.RunParallel(4000, 3); err == nil {
		t.Fatal("changing workers mid-campaign should error")
	}
	if err := c.RunParallel(4000, 2); err != nil {
		t.Fatalf("extending at the same parallelism should work: %v", err)
	}
	if got := c.Stats().Execs; got < 4000 {
		t.Fatalf("execs = %d, want >= 4000", got)
	}
}

// TestParallelCustomTargetNeedsFactory: an unregistered custom target
// cannot be cloned through the registry, so Workers > 1 requires an
// explicit TargetFactory — and works with one.
func TestParallelCustomTargetNeedsFactory(t *testing.T) {
	if _, err := NewCampaign(Options{
		Target:  customTarget{},
		Seed:    1,
		Workers: 2,
	}); err == nil {
		t.Fatal("unregistered target with Workers=2 and no factory should error")
	}

	c, err := NewCampaign(Options{
		Target:        customTarget{},
		Seed:          1,
		Workers:       2,
		TargetFactory: func() Target { return customTarget{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(500)
	if got := c.Stats().Execs; got < 500 {
		t.Fatalf("execs = %d, want >= 500", got)
	}
}

// TestParallelNameCollisionNeedsFactory: a custom target that merely shares
// a registered target's name must not be silently replaced by the registry
// instance on workers 2..N — without an explicit factory it is an error.
func TestParallelNameCollisionNeedsFactory(t *testing.T) {
	if _, err := NewCampaign(Options{
		Target:  impostorTarget{},
		Seed:    1,
		Workers: 2,
	}); err == nil {
		t.Fatal("impostor target with Workers=2 and no factory should error")
	}
	// Serial campaigns with the impostor stay fine.
	c, err := NewCampaign(Options{Target: impostorTarget{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(200)
}
