package peachstar

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/crash"
)

// collectEvents drains a finished run's stream into per-type buckets.
func collectEvents(r *Run) (stats []StatsEvent, cov []NewCoverageEvent, crashes []CrashEvent, syncs []SyncWindowEvent) {
	for ev := range r.Events() {
		switch ev := ev.(type) {
		case StatsEvent:
			stats = append(stats, ev)
		case NewCoverageEvent:
			cov = append(cov, ev)
		case CrashEvent:
			crashes = append(crashes, ev)
		case SyncWindowEvent:
			syncs = append(syncs, ev)
		}
	}
	return stats, cov, crashes, syncs
}

// TestStartDeliversTypedEvents: a budgeted session emits at least one
// StatsEvent, coverage growth, and one CrashEvent per unique fault the
// campaign banks — the stream is the campaign, observed.
func TestStartDeliversTypedEvents(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 11})
	r, err := c.Start(context.Background(), RunConfig{Execs: 15000, EventBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	stats, cov, crashes, _ := collectEvents(r)
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil on a spent budget", err)
	}

	if len(stats) == 0 {
		t.Fatal("no StatsEvent delivered")
	}
	final := stats[len(stats)-1].Stats
	exact := c.Stats()
	if final.Execs != exact.Execs || final.Edges != exact.Edges || final.UniqueCrashes != exact.UniqueCrashes {
		t.Fatalf("final StatsEvent %+v does not settle to the exact snapshot %+v", final, exact)
	}
	if len(cov) == 0 || cov[len(cov)-1].Edges != exact.Edges {
		t.Fatalf("coverage events did not track the union: %d events, campaign has %d edges", len(cov), exact.Edges)
	}

	banked := c.Crashes()
	if len(banked) == 0 {
		t.Fatal("campaign found no crashes; budget too small for this assertion")
	}
	seen := make(map[string]bool)
	for _, ev := range crashes {
		if seen[crash.RecordKey(ev.Record)] {
			t.Fatalf("crash %s at %s reported twice", ev.Record.Kind, ev.Record.Site)
		}
		seen[crash.RecordKey(ev.Record)] = true
	}
	for _, rec := range banked {
		if !seen[crash.RecordKey(rec)] {
			t.Fatalf("banked crash %s at %s never appeared on the event stream", rec.Kind, rec.Site)
		}
	}
}

// TestEmitNeverDropsCrashes: with a stalled consumer and a full buffer,
// eviction re-queues buffered CrashEvents and drops progress events
// instead — every crash that fits the buffer survives any amount of
// later traffic, in order.
func TestEmitNeverDropsCrashes(t *testing.T) {
	r := &Run{events: make(chan Event, 8)}
	var want []string
	for i := 0; i < 4; i++ {
		// Flood with droppable events before and after each crash.
		for j := 0; j < 8; j++ {
			r.emit(StatsEvent{})
			r.emit(NewCoverageEvent{})
		}
		site := fmt.Sprintf("site-%d", i)
		r.emit(CrashEvent{Record: &CrashRecord{Site: site}})
		want = append(want, site)
	}
	for j := 0; j < 16; j++ {
		r.emit(StatsEvent{})
	}
	close(r.events)
	var got []string
	for ev := range r.events {
		if c, ok := ev.(CrashEvent); ok {
			got = append(got, c.Record.Site)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("crashes delivered = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("crash order broken: %v, want %v", got, want)
		}
	}
}

// TestStartWrapperEquivalence: a session and the deprecated wrapper
// produce bit-for-bit identical campaigns — Start is a new surface over
// the same deterministic stream, not a new behavior.
func TestStartWrapperEquivalence(t *testing.T) {
	viaWrapper := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 23})
	viaWrapper.Run(5000)

	viaStart := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 23})
	r, err := viaStart.Start(context.Background(), RunConfig{Execs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}

	if got, want := viaStart.Stats(), viaWrapper.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Start stats %+v != wrapper Run stats %+v", got, want)
	}
}

// TestStartCancelMidWindow: canceling the context stops an unbounded
// serial session within merge-window granularity, Wait reports the
// context's error, and the stream still closes with a final StatsEvent.
func TestStartCancelMidWindow(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	r, err := c.Start(ctx, RunConfig{}) // no exec bound, no deadline
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	began := time.Now()
	cancel()
	if err := r.Wait(); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if took := time.Since(began); took > 2*time.Second {
		t.Fatalf("cancellation took %v, want merge-window promptness", took)
	}
	stats, _, _, _ := collectEvents(r)
	if len(stats) == 0 {
		t.Fatal("canceled run closed its stream without a final StatsEvent")
	}
	if r.Snapshot().Execs == 0 {
		t.Fatal("session ran 50ms but snapshot shows no executions")
	}
}

// TestStartStopDuringMeshSync: Stop() lands while a two-node mesh
// session is mid-campaign (sync exchanges included) and ends it
// gracefully — Wait nil, results intact, the surviving node unaffected.
func TestStartStopDuringMeshSync(t *testing.T) {
	campA := newSyncCampaign(t, 0)
	nodeA, err := campA.JoinMesh(MeshOptions{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	campB := newSyncCampaign(t, 1)
	rB, err := campB.Start(context.Background(), RunConfig{
		// Unbounded: only Stop ends it. A tight sync cadence keeps a
		// sync exchange almost always in flight or imminent.
		SyncEvery: 256,
		Attach:    []Attachment{WithMesh(MeshOptions{Listen: "127.0.0.1:0", Peers: []string{nodeA.Addr()}})},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	began := time.Now()
	rB.Stop()
	if err := rB.Wait(); err != nil {
		t.Fatalf("Wait after Stop = %v, want nil", err)
	}
	if took := time.Since(began); took > 5*time.Second {
		t.Fatalf("graceful stop took %v", took)
	}
	_, _, _, syncs := collectEvents(rB)
	if len(syncs) == 0 {
		t.Fatal("mesh session recorded no sync windows")
	}
	if campB.Stats().Execs == 0 {
		t.Fatal("mesh session banked no executions")
	}
}

// TestStartCancelMeshPromptness is the acceptance bound: a canceled
// context ends a mesh session — one with an unreachable peer pinning a
// dial in flight — within one sync window plus the mesh dial timeout.
func TestStartCancelMeshPromptness(t *testing.T) {
	c := newSyncCampaign(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := c.Start(ctx, RunConfig{
		SyncEvery: 512,
		// 127.0.0.1:1 never answers: every window pays a failed dial.
		Attach: []Attachment{WithMesh(MeshOptions{Listen: "127.0.0.1:0", Peers: []string{"127.0.0.1:1"}})},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	began := time.Now()
	cancel()
	if err := r.Wait(); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// Bound: one sync window of fuzzing (well under a second) plus the
	// 2s mesh dial timeout, with scheduling slack.
	if took := time.Since(began); took > 4*time.Second {
		t.Fatalf("mesh cancellation took %v, want < sync window + dial timeout", took)
	}
}

// TestStartStopIdempotent: double Stop, concurrent and repeated Wait,
// and Stop-after-done are all safe and consistent.
func TestStartStopIdempotent(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 5})
	r, err := c.Start(context.Background(), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 2)
	go func() { done <- r.Wait() }()
	go func() { done <- r.Wait() }()
	r.Stop()
	r.Stop()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Wait %d = %v, want nil", i, err)
		}
	}
	r.Stop() // after done: no-op
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait after done = %v", err)
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("Done() not closed after Wait returned")
	}
}

// TestStartRejectsConcurrentSessions: one session at a time per campaign;
// the slot frees when the session ends.
func TestStartRejectsConcurrentSessions(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 7})
	r, err := c.Start(context.Background(), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Start(context.Background(), RunConfig{Execs: 100}); err == nil {
		t.Fatal("second concurrent Start should fail")
	}
	r.Stop()
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	r2, err := c.Start(context.Background(), RunConfig{Execs: c.Execs() + 256})
	if err != nil {
		t.Fatalf("Start after previous session ended: %v", err)
	}
	if err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestStartSnapshotDuringRun: Snapshot is safe while workers fuzz and
// converges to the exact figures once the session ends (the satellite-2
// contract: approximate counters come from the race-safe published
// path).
func TestStartSnapshotDuringRun(t *testing.T) {
	c := newTestCampaign(t, Options{Strategy: PeachStar, Seed: 13, Workers: 2})
	r, err := c.Start(context.Background(), RunConfig{Execs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer Snapshot concurrently with the run; -race is the assertion.
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		time.Sleep(time.Millisecond)
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, exact := r.Snapshot(), c.Stats()
	if snap.Execs != exact.Execs || snap.Edges != exact.Edges ||
		snap.UniqueCrashes != exact.UniqueCrashes || snap.CorpusPuzzles != exact.CorpusPuzzles {
		t.Fatalf("post-run Snapshot %+v != exact Stats %+v", snap, exact)
	}
}
