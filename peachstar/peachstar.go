// Package peachstar is the public API of this repository: a Go
// reproduction of Peach* — coverage-guided packet crack and generation for
// ICS protocol fuzzing (Luo et al., DAC 2020).
//
// The package re-exports the pieces a downstream user composes:
//
//   - data models (the Pit equivalent) via Model/Chunk builders or the
//     XML Pit parser,
//   - instrumented targets (the six ICS protocol servers the paper
//     evaluates, or any user type implementing Target),
//   - the fuzzing engine in both configurations the paper compares
//     (baseline Peach and Peach*),
//   - the experiment harness that regenerates the paper's figures and
//     tables.
//
// # Quickstart
//
//	tgt, _ := peachstar.NewTarget("libmodbus")
//	campaign, _ := peachstar.NewCampaign(peachstar.Options{
//		Target:   tgt,
//		Strategy: peachstar.PeachStar,
//		Seed:     1,
//	})
//	campaign.Run(50000)
//	fmt.Println(campaign.Stats())
//	for _, c := range campaign.Crashes() {
//		fmt.Printf("%s at %s (packet %x)\n", c.Kind, c.Site, c.Example)
//	}
package peachstar

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
	"repro/internal/pit"
	"repro/internal/targets"

	// Register the six evaluated protocol targets.
	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// Strategy selects the generation strategy of a campaign.
type Strategy = core.Strategy

// The two strategies the paper compares, plus the §VII future-work
// extension pair (byte-level mutation fuzzing, with and without
// coverage-guided packet crack).
const (
	// Peach is the baseline generation-based fuzzing loop.
	Peach = core.StrategyPeach
	// PeachStar adds coverage feedback, packet cracking and
	// semantic-aware generation — the paper's contribution.
	PeachStar = core.StrategyPeachStar
	// MutFuzz is an AFL-style byte-level fuzzer over the same targets.
	MutFuzz = core.StrategyMutation
	// MutFuzzStar adds chunk-aware donation to MutFuzz — the paper's
	// technique ported to a mutation-based fuzzer (§VII).
	MutFuzzStar = core.StrategyMutationStar
)

// Model is a packet data model (the Pit DataModel equivalent).
type Model = datamodel.Model

// Chunk is one construction rule in a data model tree.
type Chunk = datamodel.Chunk

// Target is an instrumented protocol program plus its format specification.
type Target = targets.Target

// Tracer records edge coverage during one execution; custom targets call
// its Hit method at branch points.
type Tracer = coverage.Tracer

// BlockID identifies one instrumented basic block of a custom target.
type BlockID = coverage.BlockID

// Stats is a campaign progress snapshot.
type Stats = core.Stats

// CrashRecord is one unique fault found by a campaign.
type CrashRecord = crash.Record

// Puzzle is one corpus entry produced by cracking a valuable packet.
type Puzzle = corpus.Puzzle

// Options configures a campaign.
type Options struct {
	// Target is the protocol program under test. Use NewTarget for the
	// six built-in projects or provide any targets.Target.
	Target Target
	// Models overrides the target's own model set when non-nil (for
	// fuzzing a built-in target with a custom Pit).
	Models []*Model
	// Strategy selects Peach or PeachStar. The zero value is Peach.
	Strategy Strategy
	// Seed makes the campaign reproducible; equal options and seed give
	// byte-identical campaigns.
	Seed uint64
	// MaxBatch bounds the per-iteration donor product materialization
	// (0 = engine default).
	MaxBatch int
}

// Campaign is one running fuzzing campaign.
type Campaign struct {
	eng *core.Engine
}

// NewCampaign validates options and prepares a campaign.
func NewCampaign(opts Options) (*Campaign, error) {
	if opts.Target == nil {
		return nil, fmt.Errorf("peachstar: Options.Target is required")
	}
	models := opts.Models
	if models == nil {
		models = opts.Target.Models()
	}
	eng, err := core.New(core.Config{
		Models:   models,
		Target:   opts.Target,
		Strategy: opts.Strategy,
		Seed:     opts.Seed,
		MaxBatch: opts.MaxBatch,
	})
	if err != nil {
		return nil, err
	}
	return &Campaign{eng: eng}, nil
}

// Run fuzzes until at least execBudget target executions have happened.
// It may be called repeatedly to extend a campaign.
func (c *Campaign) Run(execBudget int) {
	c.eng.Run(execBudget)
}

// Step performs one engine iteration and returns how many executions it
// spent — the granularity used for paths-over-time sampling.
func (c *Campaign) Step() int { return c.eng.Step() }

// Stats returns the current progress snapshot.
func (c *Campaign) Stats() Stats { return c.eng.Stats() }

// Crashes returns the unique faults found so far, in discovery order.
func (c *Campaign) Crashes() []*CrashRecord { return c.eng.Crashes().Records() }

// CorpusSize returns the number of puzzles currently stored.
func (c *Campaign) CorpusSize() int { return c.eng.Corpus().Len() }

// CorpusSignatures lists the construction-rule signatures present in the
// puzzle corpus — a view into what packet cracking has learned.
func (c *Campaign) CorpusSignatures() []string { return c.eng.Corpus().Signatures() }

// NewTarget instantiates one of the registered protocol targets by its
// project name: "libmodbus", "IEC104", "libiec61850", "lib60870",
// "libiccp", or "opendnp3".
func NewTarget(name string) (Target, error) { return targets.New(name) }

// TargetNames lists the registered protocol targets.
func TargetNames() []string { return targets.Names() }

// ParsePit reads an XML Pit format specification into data models.
func ParsePit(r io.Reader) ([]*Model, error) { return pit.Parse(r) }

// ParsePitString is ParsePit over an in-memory document.
func ParsePitString(s string) ([]*Model, error) { return pit.ParseString(s) }

// Blocks pre-computes n deterministic instrumentation block IDs for a named
// region of a custom target (cf. DESIGN.md §2.2 on the instrumentation
// substitution).
func Blocks(name string, n int) []BlockID { return coverage.Blocks(name, n) }

// Checksum computes one of the supported checksum algorithms, for targets
// that validate integrity fields themselves.
func Checksum(kind datamodel.FixKind, data []byte) uint64 {
	return datamodel.Checksum(kind, data)
}
