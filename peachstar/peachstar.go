// Package peachstar is the public API of this repository: a Go
// reproduction of Peach* — coverage-guided packet crack and generation for
// ICS protocol fuzzing (Luo et al., DAC 2020).
//
// The package re-exports the pieces a downstream user composes:
//
//   - data models (the Pit equivalent) via Model/Chunk builders or the
//     XML Pit parser,
//   - instrumented targets (the six ICS protocol servers the paper
//     evaluates, or any user type implementing Target),
//   - the fuzzing engine in both configurations the paper compares
//     (baseline Peach and Peach*),
//   - the experiment harness that regenerates the paper's figures and
//     tables.
//
// # Quickstart
//
//	tgt, _ := peachstar.NewTarget("libmodbus")
//	campaign, _ := peachstar.NewCampaign(peachstar.Options{
//		Target:   tgt,
//		Strategy: peachstar.PeachStar,
//		Seed:     1,
//	})
//	campaign.Run(50000)
//	fmt.Println(campaign.Stats())
//	for _, c := range campaign.Crashes() {
//		fmt.Printf("%s at %s (packet %x)\n", c.Kind, c.Site, c.Example)
//	}
package peachstar

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
	"repro/internal/pit"
	"repro/internal/sandbox"
	"repro/internal/session"
	"repro/internal/targets"

	// Register the six evaluated protocol targets.
	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// Strategy selects the generation strategy of a campaign.
type Strategy = core.Strategy

// The two strategies the paper compares, plus the §VII future-work
// extension pair (byte-level mutation fuzzing, with and without
// coverage-guided packet crack).
const (
	// Peach is the baseline generation-based fuzzing loop.
	Peach = core.StrategyPeach
	// PeachStar adds coverage feedback, packet cracking and
	// semantic-aware generation — the paper's contribution.
	PeachStar = core.StrategyPeachStar
	// MutFuzz is an AFL-style byte-level fuzzer over the same targets.
	MutFuzz = core.StrategyMutation
	// MutFuzzStar adds chunk-aware donation to MutFuzz — the paper's
	// technique ported to a mutation-based fuzzer (§VII).
	MutFuzzStar = core.StrategyMutationStar
)

// Model is a packet data model (the Pit DataModel equivalent).
type Model = datamodel.Model

// Chunk is one construction rule in a data model tree.
type Chunk = datamodel.Chunk

// Target is an instrumented protocol program plus its format specification.
type Target = targets.Target

// Tracer records edge coverage during one execution; custom targets call
// its Hit method at branch points.
type Tracer = coverage.Tracer

// BlockID identifies one instrumented basic block of a custom target.
type BlockID = coverage.BlockID

// Stats is a campaign progress snapshot.
//
// On a multi-worker campaign, Paths is the sum of the workers' local
// valuable-execution counters: discoveries made concurrently by several
// workers within one merge window are counted once per discoverer, so the
// aggregate can exceed what a serial campaign with identical coverage would
// report. Edges is computed from the merged coverage union and is the
// worker-count-independent metric for cross-mode comparisons.
type Stats = core.Stats

// MutatorStat is one mutation operator's adaptive-scheduler accounting
// (Stats.MutatorStats): lifetime trials and new-coverage hits, aggregated
// across models and workers. Populated only on adaptive campaigns.
type MutatorStat = core.MutatorStat

// DefaultMergeEvery is the per-worker execution count between merges of a
// parallel campaign's shared state — the slice granularity driving loops
// should use when advancing a fleet incrementally.
const DefaultMergeEvery = core.DefaultMergeEvery

// CrashRecord is one unique fault found by a campaign.
type CrashRecord = crash.Record

// Puzzle is one corpus entry produced by cracking a valuable packet.
type Puzzle = corpus.Puzzle

// StateModel is a protocol session state machine: which message models may
// be sent in which state, and where sending each one leads. Build one
// directly from States, parse one from a Pit file's <StateModel> element
// (ParsePitDocument), or take a built-in target's via SessionTarget.
type StateModel = session.StateModel

// State is one node of a StateModel.
type State = session.State

// Action is one outgoing transition of a State: the data model it sends
// and the state it leads to.
type Action = session.Action

// SessionTarget is a Target that supports stateful-session fuzzing: it
// publishes its protocol's StateModel and can reset per-connection session
// state between sequences. The built-in IEC104 target implements it.
type SessionTarget = targets.SessionTarget

// StateCoverage is one protocol state's per-state campaign accounting
// (Stats.StateCoverage): messages sent from the state and coverage edges
// first lit by them. Populated only on session campaigns.
type StateCoverage = core.StateCoverage

// PitDocument is a fully parsed Pit file: data models plus any session
// state machines (<StateModel>) that reference them.
type PitDocument = pit.Document

// Options configures a campaign.
type Options struct {
	// Target is the protocol program under test. Use NewTarget for the
	// six built-in projects or provide any targets.Target.
	Target Target
	// Models overrides the target's own model set when non-nil (for
	// fuzzing a built-in target with a custom Pit).
	Models []*Model
	// Strategy selects Peach or PeachStar. The zero value is Peach.
	Strategy Strategy
	// Seed makes the campaign reproducible; equal options and seed give
	// byte-identical campaigns.
	Seed uint64
	// MaxBatch bounds the per-iteration donor product materialization
	// (0 = engine default).
	MaxBatch int
	// Workers shards Run across this many parallel worker engines. 0 and
	// 1 both mean serial, which is bit-for-bit identical to a campaign
	// created before this option existed. Each worker owns a fresh target
	// instance and an independent RNG stream split from Seed; workers
	// exchange coverage and puzzles in coarse batches, so throughput
	// scales near-linearly with cores.
	Workers int
	// TargetFactory builds the fresh target instances extra workers need.
	// When nil, the campaign re-instantiates the registered target by its
	// Name(), which covers the six built-in projects; a custom
	// unregistered target must supply a factory to run with Workers > 1.
	TargetFactory func() Target
	// SeedStream offsets the RNG stream indices this campaign's workers
	// draw from the campaign seed: worker i fuzzes stream SeedStream+i.
	// Leave zero for a standalone campaign. In a distributed fleet
	// (DialSync), give each leaf a disjoint range — e.g. leaf k with W
	// workers uses SeedStream k*W — so no two hosts repeat each other's
	// sequences while the whole fleet remains one reproducible campaign.
	SeedStream int
	// Adaptive enables the adaptive scheduler: learned per-model mutator
	// weights, rarity-weighted valuable-seed selection, and periodic
	// corpus distillation. Adaptive campaigns are reproducible for a
	// fixed seed but follow different random streams than non-adaptive
	// ones; with Adaptive false (the default) campaigns are bit-for-bit
	// identical to builds that predate the scheduler. Progress surfaces
	// as Stats.MutatorStats, Stats.Distills, and DistillEvents.
	Adaptive bool
	// Sessions switches the campaign to stateful-session fuzzing: instead
	// of independent single packets, each iteration generates and sends a
	// legal message sequence through the protocol's state machine, with
	// per-state coverage accounting and sequence-level mutation. The state
	// machine is StateModel when non-nil, otherwise the target's own
	// (Options.Target must then be a SessionTarget). Session campaigns are
	// reproducible for a fixed seed; with Sessions false and StateModel nil
	// (the default) campaigns are bit-for-bit identical to builds that
	// predate session fuzzing. Progress surfaces as Stats.Sequences,
	// Stats.StateCoverage, Stats.SeqOpStats, and StateEvents.
	Sessions bool
	// StateModel is the session state machine to fuzz through, implying
	// Sessions when non-nil — for custom targets and Pit-parsed models
	// (ParsePitDocument). Every Action must name a model in the campaign's
	// model set.
	StateModel *StateModel
}

// Campaign is one fuzzing campaign. Drive it with Start (a cancellable
// session with a typed event stream), or with the deprecated blocking
// wrappers (Run, RunParallel, RunUntil, RunFor) that delegate to Start.
type Campaign struct {
	cfg         core.Config
	userFactory func() Target         // Options.TargetFactory, may be nil
	factory     func() sandbox.Target // resolved lazily; nil until resolved
	seedStream  int                   // Options.SeedStream
	fleet       *core.Fleet
	// running guards the one-session-at-a-time invariant of Start.
	running int32
}

// NewCampaign validates options and prepares a campaign.
func NewCampaign(opts Options) (*Campaign, error) {
	if opts.Target == nil {
		return nil, fmt.Errorf("peachstar: Options.Target is required")
	}
	models := opts.Models
	if models == nil {
		models = opts.Target.Models()
	}
	sm := opts.StateModel
	if sm == nil && opts.Sessions {
		st, ok := opts.Target.(SessionTarget)
		if !ok {
			return nil, fmt.Errorf("peachstar: Options.Sessions needs a state machine: target %q is not a SessionTarget and Options.StateModel is nil",
				opts.Target.Name())
		}
		sm = st.StateModel()
	}
	c := &Campaign{
		cfg: core.Config{
			Models:   models,
			Target:   opts.Target,
			Strategy: opts.Strategy,
			Seed:     opts.Seed,
			MaxBatch: opts.MaxBatch,
			Adaptive: opts.Adaptive,
			Session:  sm,
		},
		userFactory: opts.TargetFactory,
		seedStream:  opts.SeedStream,
	}
	if err := c.build(opts.Workers); err != nil {
		return nil, err
	}
	return c, nil
}

// targetFactory resolves how extra workers obtain fresh target instances:
// the explicit Options.TargetFactory, or re-instantiation through the target
// registry when the campaign's target actually is the registered one — a
// custom type that merely shares a registered name must not be silently
// replaced by the registry target on workers 2..N, so it requires an
// explicit factory. Returns nil when neither applies.
func (c *Campaign) targetFactory() func() sandbox.Target {
	if c.userFactory != nil {
		return func() sandbox.Target { return c.userFactory() }
	}
	name := c.cfg.Target.(Target).Name()
	probe, err := targets.New(name)
	if err != nil || reflect.TypeOf(probe) != reflect.TypeOf(c.cfg.Target) {
		return nil
	}
	return func() sandbox.Target {
		t, err := targets.New(name)
		if err != nil {
			panic(fmt.Sprintf("peachstar: target %q vanished from registry: %v", name, err))
		}
		return t
	}
}

// build constructs the worker fleet for the given parallelism. The target
// factory is resolved only when extra workers actually need one, so serial
// campaigns never probe the registry.
func (c *Campaign) build(workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && c.factory == nil {
		c.factory = c.targetFactory()
		if c.factory == nil {
			return fmt.Errorf("peachstar: Workers=%d needs Options.TargetFactory: target %q is not (an instance of) a registered target",
				workers, c.cfg.Target.(Target).Name())
		}
	}
	fleet, err := core.NewFleet(c.cfg, core.ParallelConfig{
		Workers:    workers,
		NewTarget:  c.factory,
		SeedStream: c.seedStream,
	})
	if err != nil {
		return err
	}
	c.fleet = fleet
	return nil
}

// Run fuzzes until at least execBudget target executions have happened,
// using the parallelism configured in Options.Workers. It may be called
// repeatedly to extend a campaign.
//
// Deprecated: use Start with RunConfig{Execs: execBudget} and Wait on the
// returned Run — it adds cancellation, early stop, and live events. Run
// remains as a wrapper over Start and produces bit-for-bit identical
// campaigns.
func (c *Campaign) Run(execBudget int) {
	if execBudget <= 0 {
		return // RunConfig.Execs 0 means "unbounded", not "spent"
	}
	c.waitWrapped(RunConfig{Execs: execBudget})
}

// RunUntil fuzzes until the wall-clock deadline. The deadline is checked
// inside every worker's loop, so the campaign stops within one engine
// iteration of it rather than finishing out a fixed execution slice; each
// worker syncs its discoveries into the shared state before returning. It
// may be called repeatedly (and mixed with Run) to extend a campaign.
//
// Deprecated: use Start with RunConfig{Deadline: deadline}.
func (c *Campaign) RunUntil(deadline time.Time) {
	if deadline.IsZero() {
		return // a zero RunConfig.Deadline means "no deadline"
	}
	c.waitWrapped(RunConfig{Deadline: deadline})
}

// RunFor is RunUntil with a relative wall-clock budget.
//
// Deprecated: use Start with RunConfig{Duration: d}.
func (c *Campaign) RunFor(d time.Duration) {
	if d <= 0 {
		return
	}
	c.waitWrapped(RunConfig{Duration: d})
}

// RunParallel fuzzes until at least execBudget total target executions have
// happened, sharded across the given number of workers. workers <= 1 runs
// the serial engine, bit-for-bit identical to Run on a serial campaign. The
// worker count may differ from Options.Workers only before the campaign has
// executed anything; changing it mid-campaign is an error.
//
// Deprecated: set Options.Workers and use Start with
// RunConfig{Execs: execBudget}.
func (c *Campaign) RunParallel(execBudget, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers != c.fleet.Workers() {
		if c.fleet.Execs() > 0 {
			return fmt.Errorf("peachstar: cannot change workers from %d to %d mid-campaign",
				c.fleet.Workers(), workers)
		}
		if err := c.build(workers); err != nil {
			return err
		}
	}
	c.Run(execBudget)
	return nil
}

// waitWrapped is the deprecated wrappers' common body: start a session
// with the given config and block until it ends. The wrappers predate
// error returns, so the only possible Start failure — a session already
// in flight, always a caller bug the old API answered with a data race —
// panics instead.
func (c *Campaign) waitWrapped(cfg RunConfig) {
	r, err := c.Start(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	r.Wait()
}

// Workers returns the campaign's parallelism.
func (c *Campaign) Workers() int { return c.fleet.Workers() }

// Execs returns the total executions performed so far, without the merge
// work a full Stats snapshot does — for budget arithmetic in driving loops.
func (c *Campaign) Execs() int { return c.fleet.Execs() }

// Step performs one engine iteration and returns how many executions it
// spent — the granularity used for paths-over-time sampling. On a parallel
// campaign it advances only the first worker; use Run/RunParallel to drive
// the whole fleet.
func (c *Campaign) Step() int { return c.fleet.Step() }

// Stats returns the current progress snapshot, aggregated across workers.
func (c *Campaign) Stats() Stats { return c.fleet.Stats() }

// Crashes returns the unique faults found so far, in discovery order,
// deduplicated across workers.
func (c *Campaign) Crashes() []*CrashRecord { return c.fleet.Crashes().Records() }

// CorpusSize returns the number of puzzles currently stored.
func (c *Campaign) CorpusSize() int { return c.fleet.Corpus().Len() }

// CorpusSignatures lists the construction-rule signatures present in the
// puzzle corpus — a view into what packet cracking has learned.
func (c *Campaign) CorpusSignatures() []string { return c.fleet.Corpus().Signatures() }

// NewTarget instantiates one of the registered protocol targets by its
// project name: "libmodbus", "IEC104", "libiec61850", "lib60870",
// "libiccp", or "opendnp3".
func NewTarget(name string) (Target, error) { return targets.New(name) }

// TargetNames lists the registered protocol targets.
func TargetNames() []string { return targets.Names() }

// ParsePit reads an XML Pit format specification into data models.
func ParsePit(r io.Reader) ([]*Model, error) { return pit.Parse(r) }

// ParsePitString is ParsePit over an in-memory document.
func ParsePitString(s string) ([]*Model, error) { return pit.ParseString(s) }

// ParsePitDocument reads an XML Pit specification into both halves: the
// data models and any <StateModel> session state machines referencing
// them. Feed a parsed state machine to Options.StateModel for a session
// campaign over the document's models.
func ParsePitDocument(r io.Reader) (*PitDocument, error) { return pit.ParseDocument(r) }

// ParsePitDocumentString is ParsePitDocument over an in-memory document.
func ParsePitDocumentString(s string) (*PitDocument, error) { return pit.ParseDocumentString(s) }

// Blocks pre-computes n deterministic instrumentation block IDs for a named
// region of a custom target (cf. DESIGN.md §2.2 on the instrumentation
// substitution).
func Blocks(name string, n int) []BlockID { return coverage.Blocks(name, n) }

// Checksum computes one of the supported checksum algorithms, for targets
// that validate integrity fields themselves.
func Checksum(kind datamodel.FixKind, data []byte) uint64 {
	return datamodel.Checksum(kind, data)
}
