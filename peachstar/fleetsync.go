package peachstar

// This file is the public face of the distributed fleet transport
// (internal/fleetnet): a campaign can serve its shared state to remote
// leaves (ServeSync) or attach itself as a leaf of a remote hub
// (DialSync). See ARCHITECTURE.md for the wire protocol and the
// convergence guarantees, and the README "Distributed campaigns" section
// for operational semantics.

import (
	"context"
	"time"

	"repro/internal/fleetnet"
)

// SyncServer is a running fleet-sync hub bound to one campaign: remote
// leaves that connect merge their coverage, puzzles, and crashes into the
// campaign's shared state, and receive everything the campaign (and its
// other leaves) know in return.
type SyncServer struct {
	hub *fleetnet.Hub
}

// ServeSync starts serving this campaign's shared state to remote leaves
// on addr (host:port; ":0" picks a free port — see Addr). The hub accepts
// in the background; the campaign may keep fuzzing concurrently, remote
// and local discoveries converge through the same merge path. Close the
// returned server to stop accepting.
func (c *Campaign) ServeSync(addr string) (*SyncServer, error) {
	return c.serveSync(context.Background(), addr)
}

// serveSync is ServeSync scoped to a context (the session driver's path,
// so a canceled session tears its hub attachment down promptly): ctx
// cancellation closes the hub, listener and peer connections included.
func (c *Campaign) serveSync(ctx context.Context, addr string) (*SyncServer, error) {
	hub, err := fleetnet.NewHub(fleetnet.HubConfig{
		State:      c.fleet.State(),
		Target:     c.cfg.Target.(Target).Name(),
		Models:     c.cfg.Models,
		LocalExecs: c.fleet.ExecsApprox,
	})
	if err != nil {
		return nil, err
	}
	if err := hub.ListenAndServeContext(ctx, addr); err != nil {
		return nil, err
	}
	return &SyncServer{hub: hub}, nil
}

// Addr returns the bound listen address.
func (s *SyncServer) Addr() string { return s.hub.Addr() }

// RemoteStats reports the hub's view of its leaves: total remote
// executions and hangs (absolute figures from each leaf's latest sync,
// surviving disconnects), and how many leaves are connected right now.
func (s *SyncServer) RemoteStats() (execs, hangs, connected int) {
	return s.hub.RemoteStats()
}

// Close stops accepting and disconnects all leaves. State already merged
// stays in the campaign; leaves keep fuzzing locally and will resume if a
// new server is started on the campaign (or any campaign sharing its
// state) at the same address.
func (s *SyncServer) Close() error { return s.hub.Close() }

// SyncLeaf attaches one campaign to a remote hub as a fleet leaf.
type SyncLeaf struct {
	c    *Campaign
	leaf *fleetnet.Leaf
}

// DialSync prepares this campaign to sync with the hub at addr. No
// connection is made until the first Sync (or RunSynced window), and a
// lost connection only pauses exchange — the campaign keeps fuzzing and
// the next sync reconnects and resumes.
//
// Give each leaf of a fleet a distinct Options.SeedStream so no two hosts
// fuzz the same RNG streams of the shared campaign seed.
func (c *Campaign) DialSync(addr string) (*SyncLeaf, error) {
	leaf, err := fleetnet.NewLeaf(fleetnet.LeafConfig{
		Fleet:  c.fleet,
		Addr:   addr,
		Target: c.cfg.Target.(Target).Name(),
		Models: c.cfg.Models,
	})
	if err != nil {
		return nil, err
	}
	return &SyncLeaf{c: c, leaf: leaf}, nil
}

// Sync runs one merge window with the hub: push local discoveries, pull
// the fleet's. Safe to call between Run segments; returns the transport
// error, if any, after resetting the session for the next attempt.
func (l *SyncLeaf) Sync() error { return l.leaf.Sync() }

// RunSynced fuzzes until the campaign has spent execBudget total
// executions, syncing with the hub every syncEvery executions (0 picks a
// default of four merge windows). Sync failures are tolerated: fuzzing
// continues and the next window retries. The final sync's error, if any,
// is returned; local results are intact regardless.
//
// Deprecated: use Campaign.Start with this leaf attached — either
// RunConfig{Attach: []Attachment{WithLeaf(addr)}} for a session-owned
// uplink, or this handle's Attachment() to keep it across sessions.
func (l *SyncLeaf) RunSynced(execBudget, syncEvery int) error {
	if execBudget <= 0 {
		return l.Sync() // budget already spent: just the final flush
	}
	return runAttached(l.c, RunConfig{Execs: execBudget, SyncEvery: syncEvery}, l.Attachment())
}

// RunSyncedUntil is RunSynced with a wall-clock deadline instead of an
// exec budget, keeping the same syncEvery execution cadence; it stops
// within one merge-window slice of the deadline.
//
// Deprecated: use Campaign.Start with a Deadline and this leaf attached
// (see RunSynced).
func (l *SyncLeaf) RunSyncedUntil(deadline time.Time, syncEvery int) error {
	if deadline.IsZero() {
		return l.Sync() // no deadline to honor: just the final flush
	}
	return runAttached(l.c, RunConfig{Deadline: deadline, SyncEvery: syncEvery}, l.Attachment())
}

// FleetStats returns the fleet-wide figures from the latest hub reply —
// total executions the hub knows of, distinct edges in the hub's union
// map, connected leaves — and whether a reply has arrived yet.
func (l *SyncLeaf) FleetStats() (execs, edges, leaves int, ok bool) {
	return l.leaf.FleetStats()
}

// Connected reports whether a hub session is currently established.
func (l *SyncLeaf) Connected() bool { return l.leaf.Connected() }

// Close drops the hub session. The campaign and its results are untouched.
func (l *SyncLeaf) Close() error { return l.leaf.Close() }
