package peachstar

import "repro/internal/datamodel"

// Re-exported model builders, so user protocols can be described without
// importing internal packages. They mirror the Pit elements (cf. paper
// Fig. 1): typed leaves, blocks, choices, arrays, relations and fixups.

// Endianness of Number chunks.
const (
	Big    = datamodel.Big
	Little = datamodel.Little
)

// Relation kinds.
const (
	SizeOf   = datamodel.SizeOf
	CountOf  = datamodel.CountOf
	OffsetOf = datamodel.OffsetOf
)

// Fixup (checksum) kinds.
const (
	CRC32IEEE   = datamodel.CRC32IEEE
	CRC16Modbus = datamodel.CRC16Modbus
	CRC16DNP    = datamodel.CRC16DNP
	Sum8        = datamodel.Sum8
	LRC         = datamodel.LRC
)

// Variable marks a String/Blob whose size is resolved by relation or
// region remainder.
const Variable = datamodel.Variable

// Num returns a big-endian Number chunk of the given byte width.
func Num(name string, width int, def uint64) *Chunk { return datamodel.Num(name, width, def) }

// NumLE returns a little-endian Number chunk.
func NumLE(name string, width int, def uint64) *Chunk { return datamodel.NumLE(name, width, def) }

// Str returns a fixed-size String chunk.
func Str(name string, size int, def string) *Chunk { return datamodel.Str(name, size, def) }

// StrVar returns a variable-size String chunk bounded by [min, max].
func StrVar(name string, min, max int, def string) *Chunk {
	return datamodel.StrVar(name, min, max, def)
}

// Bytes returns a fixed-size Blob chunk.
func Bytes(name string, size int, def []byte) *Chunk { return datamodel.Bytes(name, size, def) }

// BytesVar returns a variable-size Blob chunk bounded by [min, max].
func BytesVar(name string, min, max int, def []byte) *Chunk {
	return datamodel.BytesVar(name, min, max, def)
}

// Blk returns a Block over the given children.
func Blk(name string, children ...*Chunk) *Chunk { return datamodel.Blk(name, children...) }

// Alt returns a Choice over the given alternatives.
func Alt(name string, alternatives ...*Chunk) *Chunk { return datamodel.Alt(name, alternatives...) }

// Rep returns an Array repeating the element prototype.
func Rep(name string, element *Chunk, maxCount int) *Chunk {
	return datamodel.Rep(name, element, maxCount)
}

// NewModel assembles and validates a model, panicking on malformed
// definitions.
func NewModel(name string, fields ...*Chunk) *Model { return datamodel.NewModel(name, fields...) }

// RuleSignature computes a chunk's construction-rule identity — the donor
// compatibility key of the puzzle corpus (§III's chunk similarity).
func RuleSignature(c *Chunk) string { return datamodel.RuleSignature(c) }
