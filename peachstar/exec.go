package peachstar

// This file is the public face of the real-target execution backend
// (internal/executor): session configuration that points a campaign at a
// spawned server process instead of the in-process sandbox, and the
// reproducer-replay helper that verifies a captured crash against a fresh
// target instance.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/executor"
	"repro/internal/mem"
	"repro/internal/sandbox"
)

// FaultKind classifies a unique fault (CrashRecord.Kind): the simulated
// heap's ASan-style classes for in-process targets, plus the process
// executor's exit-status classes for real targets.
type FaultKind = mem.FaultKind

// ExecBackend selects the execution backend of one session
// (RunConfig.Exec): where a generated packet is actually run. Build one
// with WithProcTarget or WithProcOptions; a nil ExecBackend means the
// default in-process sandbox, which is bit-for-bit identical to every
// campaign that predates the backends.
type ExecBackend interface {
	// build materializes the backend for a campaign.
	build(c *Campaign) (executor.Executor, error)
}

// ProcOptions tunes a real-target backend beyond the command and address.
// The zero value is a sensible default for a local TCP server.
type ProcOptions struct {
	// Net is the transport, "tcp" (default) or "udp".
	Net string
	// ExecTimeout is the per-execution watchdog: how long one
	// send+receive round may take before the target is declared hung and
	// its process group is killed (0 = executor default, 200ms).
	ExecTimeout time.Duration
	// SpawnTimeout bounds how long a freshly spawned target has to start
	// accepting connections (0 = executor default, 10s).
	SpawnTimeout time.Duration
	// MaxJournal caps the reproducer journal; reaching it restarts the
	// target preventively so reproducers stay bounded and anchored at a
	// fresh process state (0 = executor default, 512 packets).
	MaxJournal int
	// Seed seeds the connect-retry backoff jitter (0 = derived from the
	// campaign seed).
	Seed uint64
	// TargetStderr, when non-nil, receives the target's stderr (crash
	// banners); nil discards it.
	TargetStderr *os.File
	// Logf receives supervisor lifecycle messages — spawns, watchdog
	// fires, survived connection drops (nil = silent).
	Logf func(format string, args ...any)
}

// WithProcTarget returns an execution backend that spawns the given
// command as the target process and fuzzes it over TCP at addr. The
// literal substring "{addr}" in any argument is replaced with addr, so one
// value spells both where the server listens and where the fuzzer
// connects:
//
//	run, _ := campaign.Start(ctx, peachstar.RunConfig{
//		Execs: 100000,
//		Exec:  peachstar.WithProcTarget([]string{"./server", "-listen", "{addr}"}, "127.0.0.1:1502"),
//	})
//
// The session owns the process: it is spawned (with a liveness probe) when
// fuzzing starts, killed and respawned on every crash or watchdog hang
// with campaign state preserved, and torn down when the session ends.
// Crashes are classified by exit status and each ships with a replayable
// packet-sequence reproducer (CrashRecord.Sequence; verify with
// ReplayCrash). A process-backed session requires Options.Workers <= 1.
func WithProcTarget(cmd []string, addr string) ExecBackend {
	return WithProcOptions(cmd, addr, ProcOptions{})
}

// WithProcOptions is WithProcTarget with explicit tuning.
func WithProcOptions(cmd []string, addr string, opts ProcOptions) ExecBackend {
	return procBackend{cfg: executor.ProcConfig{
		Cmd:          cmd,
		Addr:         addr,
		Net:          opts.Net,
		ExecTimeout:  opts.ExecTimeout,
		SpawnTimeout: opts.SpawnTimeout,
		MaxJournal:   opts.MaxJournal,
		Seed:         opts.Seed,
		Stderr:       opts.TargetStderr,
		Logf:         opts.Logf,
	}}
}

// procBackend is the real-target ExecBackend.
type procBackend struct {
	cfg executor.ProcConfig
}

func (p procBackend) build(c *Campaign) (executor.Executor, error) {
	cfg := p.cfg
	if cfg.Seed == 0 {
		// Jitter from the campaign seed, displaced so the retry stream
		// never aliases the fuzzing streams.
		cfg.Seed = c.cfg.Seed ^ 0x9e3779b97f4a7c15
	}
	return executor.NewProc(cfg)
}

// ReplayResult reports how a reproducer replay went.
type ReplayResult struct {
	// Outcome is "crash", "hang", or "ok" (the target survived the whole
	// sequence — e.g. the original death came from outside, like an
	// operator kill, and is not input-driven).
	Outcome string
	// Kind and Site identify the fault the replay landed on; zero unless
	// Outcome is "crash".
	Kind FaultKind
	Site string
	// Match reports whether the replay reproduced the record's own fault
	// signature — the deterministic-reproducer property.
	Match bool
}

// ReplayCrash drives a fresh instance of the backend's target process
// through a captured reproducer (CrashRecord.Sequence) and reports what
// happened: whether the target crashed again, and whether the fault
// signature matches the record's. The target instance is private to the
// call, so replay after the capturing session has ended (or configure a
// different address): the configured address must be free.
//
// Records with no Sequence (in-process faults, records received over the
// fleet sync wire) and backends that are not process-backed are errors.
func ReplayCrash(b ExecBackend, rec *CrashRecord) (ReplayResult, error) {
	pb, ok := b.(procBackend)
	if !ok {
		return ReplayResult{}, fmt.Errorf("peachstar: ReplayCrash needs a WithProcTarget backend")
	}
	if rec == nil || len(rec.Sequence) == 0 {
		return ReplayResult{}, fmt.Errorf("peachstar: record has no reproducer sequence")
	}
	cfg := pb.cfg
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	// Honor recorded session boundaries: handshake steps re-run against
	// fresh per-connection server state (sequence numbers regenerate)
	// instead of a byte-blind replay down one connection.
	res, err := executor.ReplaySession(cfg, rec.Sequence, rec.SeqStarts)
	if err != nil {
		return ReplayResult{}, err
	}
	out := ReplayResult{Outcome: res.Outcome.String()}
	if res.Outcome == sandbox.Crash && res.Fault != nil {
		out.Kind = res.Fault.Kind
		out.Site = res.Fault.Site
		out.Match = res.Fault.Kind == rec.Kind && res.Fault.Site == rec.Site
	}
	return out, nil
}
