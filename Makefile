# CI entry points for the Peach* reproduction. `make ci` is the full gate;
# the individual targets are what it runs.

GO ?= go

.PHONY: ci build vet test race fuzz bench-parallel clean

ci: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel campaign runner must be data-race free: every TestParallel*
# test (core fleet, public API, crash bank concurrency) under -race.
race:
	$(GO) test -race -run 'TestParallel|TestConcurrent' ./internal/core ./internal/crash ./peachstar

# Short native-fuzz smoke runs over the crack/generate round-trip targets.
fuzz:
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrack$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzGenerate$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrackSeedCorpusBytes$$' -fuzztime 10s -run XXX

# Serial-vs-sharded throughput on libmodbus (the BENCH_parallel.json rows).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallelWorkers' -benchtime 50000x -run XXX .

clean:
	$(GO) clean -testcache
