# CI entry points for the Peach* reproduction. `make ci` is the full gate;
# the individual targets are what it runs. `make check` is the fast
# pre-commit gate: build + vet + race + the hot-path allocation guard.

GO ?= go

.PHONY: ci check build vet test race fuzz alloc-guard bench-parallel bench-hotpath clean

ci: build vet test race

check: build vet race alloc-guard

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel campaign runner must be data-race free: every TestParallel*
# test (core fleet, public API, crash bank concurrency) plus the
# deadline-aware loop under -race.
race:
	$(GO) test -race -run 'TestParallel|TestConcurrent|TestRunUntil' ./internal/core ./internal/crash ./peachstar

# Allocation-regression guard: the steady-state Peach* exec path must stay
# within the per-exec allocation budget (see hotpath_test.go).
alloc-guard:
	$(GO) test -run 'TestSteadyStateExecAllocBudget' -v .

# Short native-fuzz smoke runs over the crack/generate round-trip targets.
fuzz:
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrack$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzGenerate$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrackSeedCorpusBytes$$' -fuzztime 10s -run XXX

# Serial-vs-sharded throughput on libmodbus (the BENCH_parallel.json rows).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallelWorkers' -benchtime 50000x -run XXX .

# Execution hot-path measurement: emits the BENCH_hotpath.json fields
# (ns/exec, execs/sec, allocs/exec, bytes/exec) for the libmodbus Peach*
# loop as JSON on stdout. Paste into the "after" slot of BENCH_hotpath.json
# when recording a hot-path change. The per-scan microbenchmarks live in
# internal/coverage (word-level vs byte-reference).
bench-hotpath:
	$(GO) run ./cmd/benchhotpath
	$(GO) test -bench 'BenchmarkHotpathLibmodbus' -benchtime 100000x -run XXX .

clean:
	$(GO) clean -testcache
