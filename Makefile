# CI entry points for the Peach* reproduction. `make ci` is the full gate;
# the individual targets are what it runs. `make check` is the fast
# pre-commit gate: build + vet + lint + race + the hot-path allocation
# guard + the docs gate.

GO ?= go

.PHONY: ci check build vet lint test race soak fuzz alloc-guard docs-check api-check api-snapshot bench-parallel bench-hotpath bench-fleetnet bench-sched clean

ci: build vet lint test race docs-check api-check soak

check: build vet lint race alloc-guard docs-check api-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see internal/analysis): detsource,
# rnggate, hotalloc, snapfields and atomicmix over every package. The
# suite also self-applies inside `go test` (TestLintSelfClean), so a
# violation turns both lint and test red.
lint:
	$(GO) run ./cmd/peachlint ./...

test:
	$(GO) test ./...

# The parallel campaign runner and the session API must be data-race
# free: every TestParallel* test (core fleet, public API, crash bank
# concurrency), the deadline-aware loop, the TestStart* session suite
# (cancellation mid-window, Stop during a mesh sync exchange,
# double-Stop/Wait idempotence, concurrent Snapshot), the adaptive
# scheduler's determinism/session suite (TestAdaptive*/TestSched*,
# fleet-published stats atomics), and the stateful-session fuzzing suite
# (TestSession* — sequence determinism, fleet-merged state counters,
# process-backed session boundaries — plus the TestDeepState conformance
# experiment) under -race. The fleetnet loopback suite (hub + concurrent
# leaves) runs under -race in docs-check, which ci and check both include.
race:
	$(GO) test -race -run 'TestParallel|TestConcurrent|TestRunUntil|TestStart|TestAdaptive|TestSched|TestSession|TestDeepState' ./internal/core ./internal/crash ./internal/executor ./peachstar .

# Chaos soak over the real-target execution backend: a timed campaign
# against the bundled toy Modbus server while a chaos goroutine SIGKILLs
# the server out from under the supervisor. The session must complete, no
# coverage or corpus may be lost across restarts, and every captured
# reproducer must replay without diverging (see soak_test.go). The
# kill-and-resume storm does the same to the *fuzzer*: the peachstar CLI is
# repeatedly SIGKILLed mid-campaign and resumed from its durable checkpoint
# (see checkpoint_soak_test.go). Gated behind PEACHSTAR_SOAK so plain
# `go test ./...` stays fast and deterministic.
soak:
	PEACHSTAR_SOAK=1 $(GO) test -run 'TestSoakRealTarget|TestSoakKillResume' -count=1 -timeout 300s -v .

# Documentation gate: vet (which checks doc-comment placement pragmas),
# a package-doc presence check over every library package, and the
# fleetnet loopback suite — including the 2-node hub/leaf convergence
# test, the 3-node mesh partition/heal convergence test, and the
# session-lifecycle regression tests — under -race (the protocol and
# topologies documented in ARCHITECTURE.md must actually hold).
docs-check:
	@$(GO) vet ./...
	@fail=0; \
	for dir in internal/backoff internal/checkpoint internal/core internal/corpus \
	           internal/coverage internal/crash internal/datamodel internal/executor \
	           internal/fleetnet internal/mem internal/mutator internal/pit \
	           internal/rng internal/sandbox internal/session internal/bench \
	           internal/analysis \
	           internal/targets peachstar; do \
	  pkg=$$(basename $$dir); \
	  if ! grep -l "^// Package $$pkg " $$dir/*.go >/dev/null 2>&1; then \
	    echo "docs-check: package $$dir has no '// Package $$pkg' doc comment"; fail=1; \
	  fi; \
	done; \
	test -f ARCHITECTURE.md || { echo "docs-check: ARCHITECTURE.md missing"; fail=1; }; \
	grep -q "Scheduler & distillation" ARCHITECTURE.md 2>/dev/null \
	  || { echo "docs-check: ARCHITECTURE.md lost the 'Scheduler & distillation' section"; fail=1; }; \
	grep -q "Session fuzzing" ARCHITECTURE.md 2>/dev/null \
	  || { echo "docs-check: ARCHITECTURE.md lost the 'Session fuzzing' section"; fail=1; }; \
	grep -q "Durable checkpoints" ARCHITECTURE.md 2>/dev/null \
	  || { echo "docs-check: ARCHITECTURE.md lost the 'Durable checkpoints' section"; fail=1; }; \
	grep -q "Static analysis" ARCHITECTURE.md 2>/dev/null \
	  || { echo "docs-check: ARCHITECTURE.md lost the 'Static analysis' section"; fail=1; }; \
	exit $$fail
	$(GO) test -race ./internal/fleetnet

# Allocation-regression guard: the steady-state Peach* exec path must stay
# within the per-exec allocation budget (see hotpath_test.go).
alloc-guard:
	$(GO) test -run 'TestSteadyStateExecAllocBudget' -v .

# Public-API gate: the exported peachstar surface must match the golden
# snapshot (api/peachstar.golden) and every exported symbol must carry a
# doc comment. A deliberate API change is reviewed by regenerating the
# golden with `make api-snapshot` and reading the diff in the commit.
api-check:
	$(GO) run ./cmd/apicheck

api-snapshot:
	$(GO) run ./cmd/apicheck -update

# Short native-fuzz smoke runs over the crack/generate round-trip targets
# and the campaign-checkpoint decoder (truncated, corrupt, and
# non-minimal-varint envelopes must be rejected with errors, never panics).
fuzz:
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrack$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzGenerate$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/datamodel -fuzz 'FuzzCrackSeedCorpusBytes$$' -fuzztime 10s -run XXX
	$(GO) test ./internal/session -fuzz 'FuzzSequenceCodec$$' -fuzztime 10s -run XXX
	$(GO) test . -fuzz 'FuzzCheckpointDecode$$' -fuzztime 10s -run XXX

# Serial-vs-sharded throughput on libmodbus (the BENCH_parallel.json rows).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallelWorkers' -benchtime 50000x -run XXX .

# Execution hot-path measurement: emits the BENCH_hotpath.json fields
# (ns/exec, execs/sec, allocs/exec, bytes/exec) for the libmodbus Peach*
# loop as JSON on stdout. Paste into the "after" slot of BENCH_hotpath.json
# when recording a hot-path change. The per-scan microbenchmarks live in
# internal/coverage (word-level vs byte-reference).
bench-hotpath:
	$(GO) run ./cmd/benchhotpath
	$(GO) test -bench 'BenchmarkHotpathLibmodbus' -benchtime 100000x -run XXX .

# Fleetnet sync-window cost over TCP loopback: emits the
# BENCH_fleetnet.json measurement fields (per-window latency/bytes, the
# empty-window protocol floor, and the full-resync reconnect cost) at both
# the tight 256-exec window and the default 1024, plus the 3-node
# hub-less mesh round cost (-mesh).
bench-fleetnet:
	$(GO) run ./cmd/benchfleetnet -window 256
	$(GO) run ./cmd/benchfleetnet -window 1024
	$(GO) run ./cmd/benchfleetnet -mesh -window 1024

# Static vs adaptive scheduler at equal budget and seed on four protocol
# targets: emits the BENCH_sched.json measurement fields (edges, paths,
# corpus size, distillations, ns/exec per configuration) as JSON on
# stdout. Paste into the "measurements" slot of BENCH_sched.json when
# recording a scheduler change.
bench-sched:
	$(GO) run ./cmd/benchsched

clean:
	$(GO) clean -testcache
