package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke keeps every runnable example honest: each must build,
// and the distributed and mesh examples — the ones whose correctness is a
// cross-process-shaped property rather than just printed output — must run
// to convergence on loopback.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example subprocesses are slow under -short")
	}
	for _, dir := range []string{
		"./examples/quickstart",
		"./examples/crackdemo",
		"./examples/custompit",
		"./examples/vulnaudit",
		"./examples/distributed",
		"./examples/mesh",
		"./examples/realtarget",
		"./examples/realtarget/server",
		"./examples/stateful",
		"./examples/stateful/server",
		"./examples/resume",
	} {
		out, err := exec.Command("go", "build", "-o", "/dev/null", dir).CombinedOutput()
		if err != nil {
			t.Fatalf("example %s does not build: %v\n%s", dir, err, out)
		}
	}

	out, err := exec.Command("go", "run", "./examples/distributed", "-execs", "12000").CombinedOutput()
	if err != nil {
		t.Fatalf("distributed example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fleet converged") {
		t.Fatalf("distributed example did not converge:\n%s", out)
	}

	out, err = exec.Command("go", "run", "./examples/mesh", "-execs", "12000").CombinedOutput()
	if err != nil {
		t.Fatalf("mesh example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "mesh converged") {
		t.Fatalf("mesh example did not converge:\n%s", out)
	}

	// The real-target example spawns an actual server process and replays
	// its reproducers — its final line asserts every one verified.
	out, err = exec.Command("go", "run", "./examples/realtarget", "-execs", "2500").CombinedOutput()
	if err != nil {
		t.Fatalf("realtarget example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "realtarget: done (2/2 reproducers verified)") {
		t.Fatalf("realtarget example did not verify its reproducers:\n%s", out)
	}

	// The stateful example walks the IEC104 session state machine; its
	// final line asserts the campaign reached every protocol state.
	out, err = exec.Command("go", "run", "./examples/stateful", "-execs", "8000").CombinedOutput()
	if err != nil {
		t.Fatalf("stateful example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "stateful: done (2/2 states reached)") {
		t.Fatalf("stateful example did not reach every state:\n%s", out)
	}

	// The resume example checkpoints, rebuilds a campaign from the file, and
	// self-checks the continuation against an uninterrupted run — its final
	// line only prints if the two ended bit-for-bit identical.
	out, err = exec.Command("go", "run", "./examples/resume", "-execs", "12000").CombinedOutput()
	if err != nil {
		t.Fatalf("resume example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resume: continuation matches the uninterrupted campaign") {
		t.Fatalf("resume example did not match the uninterrupted campaign:\n%s", out)
	}
}
