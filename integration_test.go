package repro

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/targets"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// newCampaign wires a fresh target into an engine.
func newCampaign(t *testing.T, project string, strat core.Strategy, seed uint64) *core.Engine {
	t.Helper()
	tgt, err := targets.New(project)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: strat,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEveryTargetFuzzesUnderBothStrategies is the cross-module smoke test:
// every registered protocol target must sustain a short campaign under both
// strategies, find some coverage, and never report a hang.
func TestEveryTargetFuzzesUnderBothStrategies(t *testing.T) {
	for _, project := range targets.Names() {
		for _, strat := range []core.Strategy{core.StrategyPeach, core.StrategyPeachStar} {
			eng := newCampaign(t, project, strat, 42)
			eng.Run(1200)
			s := eng.Stats()
			if s.Paths == 0 {
				t.Errorf("%s/%s: no paths found", project, strat)
			}
			if s.Hangs != 0 {
				t.Errorf("%s/%s: %d hangs (targets are loop-free)", project, strat, s.Hangs)
			}
		}
	}
}

// TestCleanTargetsDoNotCrash asserts that the three projects outside
// Table I stay crash-free under substantial fuzzing — any crash would be an
// implementation defect in this repository, not a seeded bug.
func TestCleanTargetsDoNotCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("long clean-target campaign")
	}
	for _, project := range []string{"IEC104", "libiec61850", "opendnp3"} {
		eng := newCampaign(t, project, core.StrategyPeachStar, 7)
		eng.Run(8000)
		if n := eng.Stats().UniqueCrashes; n != 0 {
			recs := eng.Crashes().Records()
			t.Errorf("%s: %d unexpected unique crashes, first at %s", project, n, recs[0].Site)
		}
	}
}

// TestSeededBugKindsMatchTable1 runs a long Peach* hunt on the vulnerable
// projects and checks that every fault found belongs to the project's
// Table I kind set — no cross-contamination between bug classes.
func TestSeededBugKindsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("long vulnerable-target campaign")
	}
	allowed := map[string]map[mem.FaultKind]bool{
		"libmodbus": {mem.SEGV: true, mem.HeapUseAfterFree: true},
		"lib60870":  {mem.SEGV: true},
		"libiccp":   {mem.SEGV: true, mem.HeapBufferOverflow: true},
	}
	for project, kinds := range allowed {
		eng := newCampaign(t, project, core.StrategyPeachStar, 11)
		eng.Run(15000)
		for _, r := range eng.Crashes().Records() {
			if !kinds[r.Kind] {
				t.Errorf("%s: fault kind %s at %s outside Table I set", project, r.Kind, r.Site)
			}
		}
	}
}

// TestCampaignDeterminismAcrossTargets locks in reproducibility: equal
// seeds must give identical stats on every target.
func TestCampaignDeterminismAcrossTargets(t *testing.T) {
	for _, project := range targets.Names() {
		a := newCampaign(t, project, core.StrategyPeachStar, 99)
		b := newCampaign(t, project, core.StrategyPeachStar, 99)
		a.Run(800)
		b.Run(800)
		sa, sb := a.Stats(), b.Stats()
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("%s: campaigns diverged: %+v vs %+v", project, sa, sb)
		}
	}
}

// TestListing1Reproduction drives the exact scenario of the paper's
// Listing 1/2 end to end through the public engine: a Peach* campaign on
// lib60870 finds the CS101_ASDU_getCOT SEGV.
func TestListing1Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	found := false
	for seed := uint64(1); seed <= 3 && !found; seed++ {
		eng := newCampaign(t, "lib60870", core.StrategyPeachStar, seed)
		eng.Run(20000)
		for _, r := range eng.Crashes().Records() {
			if r.Kind == mem.SEGV && containsSub(r.Site, "getCOT") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("getCOT SEGV (Listing 1) not found in 3x20000 execs")
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
