package repro

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/targets"

	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/modbus"
)

// newSerialEngine builds a serial Peach* engine on a real target, with the
// adaptive scheduler on or off.
func newSerialEngine(tb testing.TB, target string, seed uint64, adaptive bool) *core.Engine {
	tb.Helper()
	tgt, err := targets.New(target)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
		Adaptive: adaptive,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// fingerprint compresses a campaign's observable outcome into one line:
// any change to the engine's RNG consumption or decision order moves at
// least one of these counters.
func fingerprint(eng *core.Engine) string {
	s := eng.Stats()
	return fmt.Sprintf("iters=%d execs=%d paths=%d semExecs=%d semPaths=%d edges=%d crashes=%d hangs=%d corpus=%d",
		s.Iterations, s.Execs, s.Paths, s.SemanticExecs, s.SemanticPaths,
		s.Edges, s.UniqueCrashes, s.Hangs, s.CorpusPuzzles)
}

// TestAdaptiveOffGolden pins the backward-compatibility half of the
// scheduler contract: with Config.Adaptive off, a campaign is bit-for-bit
// identical to the pre-scheduler engine. The fingerprints below were
// recorded on the commit immediately before the scheduler landed; if this
// test fails, the default path's RNG stream or decision order changed —
// that is a compatibility break with every historical campaign, not a
// golden value to refresh casually.
func TestAdaptiveOffGolden(t *testing.T) {
	want := map[string]string{
		"libmodbus": "iters=28927 execs=30000 paths=110 semExecs=1660 semPaths=14 edges=180 crashes=2 hangs=0 corpus=290",
		"IEC104":    "iters=28831 execs=30000 paths=67 semExecs=1758 semPaths=17 edges=79 crashes=0 hangs=0 corpus=212",
	}
	for target, golden := range want {
		eng := newSerialEngine(t, target, 1, false)
		eng.Run(30000)
		if got := fingerprint(eng); got != golden {
			t.Errorf("%s adaptive-off stream diverged from the pre-scheduler engine:\n got %s\nwant %s",
				target, got, golden)
		}
	}
}

// TestAdaptiveReproducibleRealTarget: an adaptive campaign on a real
// target is reproducible for a fixed seed — serial engines only; fleet
// runs interleave merge windows nondeterministically across runs.
func TestAdaptiveReproducibleRealTarget(t *testing.T) {
	a := newSerialEngine(t, "IEC104", 1, true)
	b := newSerialEngine(t, "IEC104", 1, true)
	a.Run(50000)
	b.Run(50000)
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("adaptive runs diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.Distills == 0 {
		t.Fatal("50000 adaptive executions ran no distillation (cadence is 32768)")
	}
	if len(sa.MutatorStats) == 0 {
		t.Fatal("adaptive run reported no mutator stats")
	}
}
