package repro

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

// newHotpathEngine builds the canonical hot-loop configuration: the serial
// Peach* engine on libmodbus — the loop BENCH_hotpath.json records.
func newHotpathEngine(tb testing.TB, seed uint64) *core.Engine {
	tb.Helper()
	tgt, err := targets.New("libmodbus")
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// BenchmarkHotpathLibmodbus measures the end-to-end Peach* execution hot
// path (generate → mutate → fixup → serialize → sandbox → coverage merge)
// on libmodbus: the ns/exec and allocs/exec rows of BENCH_hotpath.json.
// Run via `make bench-hotpath`.
func BenchmarkHotpathLibmodbus(b *testing.B) {
	eng := newHotpathEngine(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(b.N)
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(eng.Stats().Execs)/secs, "execs/s")
	}
}

// allocGuardBudget is the steady-state allocation ceiling per execution.
// With the byte arena threaded through the mutators and cross-model donor
// filtering writing into engine-owned scratch (Engine.donorScr) the
// engine measures ~0.4 allocs/exec in steady state (all amortized
// cracking, corpus and valuable-queue retention — the per-exec generation
// path itself is allocation-free); 0.75 leaves headroom without letting
// the arena/scratch work silently rot.
const allocGuardBudget = 0.75

// TestSteadyStateExecAllocBudget is the allocation-regression guard for the
// zero-allocation hot path: after warm-up, the full Peach* loop on
// libmodbus must average at most allocGuardBudget heap allocations per
// execution. Measured via runtime.MemStats.Mallocs around a 5000-exec
// window rather than testing.AllocsPerRun, because one engine iteration
// performs a variable number of executions.
func TestSteadyStateExecAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	eng := newHotpathEngine(t, 1)
	// Warm-up: populate the corpus and valuable queues, grow the arena
	// slabs and scratch buffers to their high-water marks, get past the
	// early coverage-discovery phase where cracking is frequent.
	eng.Run(30000)

	const window = 5000
	start := eng.Stats().Execs
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	eng.Run(start + window)
	runtime.ReadMemStats(&after)
	execs := eng.Stats().Execs - start

	perExec := float64(after.Mallocs-before.Mallocs) / float64(execs)
	t.Logf("steady state: %.2f allocs/exec over %d execs", perExec, execs)
	if perExec > allocGuardBudget {
		t.Fatalf("steady-state hot path allocates %.2f objects/exec, budget is %.1f — the arena/scratch work has regressed",
			perExec, allocGuardBudget)
	}
}
