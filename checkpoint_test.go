package repro

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fleetnet"
	"repro/internal/targets"
	"repro/peachstar"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// newCheckpointCampaign builds one campaign for the durable-checkpoint
// suite; every restore test builds the restoring campaign with the same
// options, which is the warm-restart contract.
func newCheckpointCampaign(tb testing.TB, target string, workers int, adaptive, sessions bool) *peachstar.Campaign {
	tb.Helper()
	tgt, err := peachstar.NewTarget(target)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := peachstar.NewCampaign(peachstar.Options{
		Target:   tgt,
		Strategy: peachstar.PeachStar,
		Seed:     1,
		Workers:  workers,
		Adaptive: adaptive,
		Sessions: sessions,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// TestCheckpointRoundTripGolden pins the canonical-encoding half of the
// checkpoint contract, across every stateful layer at once: checkpoint →
// restore into a fresh campaign → checkpoint again must reproduce the
// identical byte string (coverage words, corpus journal, crash bank,
// scheduler tables, session state, RNG positions — any layer that loses
// or reorders state breaks the byte equality), and the restored campaign
// must report identical Stats.
func TestCheckpointRoundTripGolden(t *testing.T) {
	cases := []struct {
		name               string
		target             string
		workers            int
		adaptive, sessions bool
	}{
		{"serial", "libmodbus", 1, false, false},
		{"adaptive", "libmodbus", 1, true, false},
		{"sessions-adaptive", "IEC104", 1, true, true},
		{"fleet", "libmodbus", 4, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			first, second := filepath.Join(dir, "a.ckpt"), filepath.Join(dir, "b.ckpt")

			orig := newCheckpointCampaign(t, tc.target, tc.workers, tc.adaptive, tc.sessions)
			orig.Run(20000)
			if err := orig.Checkpoint(first); err != nil {
				t.Fatal(err)
			}

			restored := newCheckpointCampaign(t, tc.target, tc.workers, tc.adaptive, tc.sessions)
			if err := restored.RestoreCheckpoint(first); err != nil {
				t.Fatal(err)
			}
			if err := restored.Checkpoint(second); err != nil {
				t.Fatal(err)
			}

			a, err := os.ReadFile(first)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(second)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("restore is not state-equal: re-checkpoint differs (%d vs %d bytes)", len(a), len(b))
			}
			if got, want := restored.Stats(), orig.Stats(); !reflect.DeepEqual(got, want) {
				t.Fatalf("restored stats diverged:\n got %+v\nwant %+v", got, want)
			}
			if got, want := len(restored.Crashes()), len(orig.Crashes()); got != want {
				t.Fatalf("restored %d crash records, want %d", got, want)
			}
		})
	}
}

// TestCheckpointWarmRestartContinuesExactly pins the strongest warm-restart
// property a serial campaign can have: kill at the halfway checkpoint,
// restore into a fresh campaign, spend the remaining budget — and land
// bit-for-bit where the uninterrupted campaign lands. This subsumes the
// acceptance bound (resumed final coverage >= an equal-remaining-budget
// cold start): the restored RNG stream, scheduler tables and retained
// seeds continue exactly, so nothing beyond the checkpoint interval is
// lost.
func TestCheckpointWarmRestartContinuesExactly(t *testing.T) {
	for _, tc := range []struct {
		name               string
		target             string
		adaptive, sessions bool
	}{
		{"plain", "libmodbus", false, false},
		{"adaptive", "libmodbus", true, false},
		{"sessions", "IEC104", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "mid.ckpt")

			straight := newCheckpointCampaign(t, tc.target, 1, tc.adaptive, tc.sessions)
			straight.Run(30000)

			interrupted := newCheckpointCampaign(t, tc.target, 1, tc.adaptive, tc.sessions)
			interrupted.Run(15000)
			if err := interrupted.Checkpoint(path); err != nil {
				t.Fatal(err)
			}

			resumed := newCheckpointCampaign(t, tc.target, 1, tc.adaptive, tc.sessions)
			if err := resumed.RestoreCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			resumed.Run(30000) // absolute budget: spends only the remainder

			if got, want := resumed.Stats(), straight.Stats(); !reflect.DeepEqual(got, want) {
				t.Fatalf("warm restart diverged from the uninterrupted campaign:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCheckpointAllTargetsWarmRestart sweeps every registered in-process
// target through the interrupted-versus-straight comparison. Exactness here
// requires the target layer of the seam (sandbox.StateCheckpointer): each
// target's long-lived state — register banks, simulated heap wear,
// activation flags, file-transfer machines — must resume with the campaign,
// or state-dependent faults fire differently after the restore.
func TestCheckpointAllTargetsWarmRestart(t *testing.T) {
	for _, name := range targets.Names() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "mid.ckpt")

			straight := newCheckpointCampaign(t, name, 1, true, false)
			straight.Run(12000)

			interrupted := newCheckpointCampaign(t, name, 1, true, false)
			interrupted.Run(6000)
			if err := interrupted.Checkpoint(path); err != nil {
				t.Fatal(err)
			}

			resumed := newCheckpointCampaign(t, name, 1, true, false)
			if err := resumed.RestoreCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			resumed.Run(12000)

			if got, want := resumed.Stats(), straight.Stats(); !reflect.DeepEqual(got, want) {
				t.Fatalf("warm restart diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCheckpointDigestMismatch: a checkpoint is sealed under the
// campaign's model digest, and restoring it into a campaign with
// different data models is refused — before any state is touched.
func TestCheckpointDigestMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "modbus.ckpt")
	donor := newCheckpointCampaign(t, "libmodbus", 1, false, false)
	donor.Run(5000)
	if err := donor.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	other := newCheckpointCampaign(t, "IEC104", 1, false, false)
	if err := other.RestoreCheckpoint(path); err == nil {
		t.Fatal("restoring a libmodbus checkpoint into an IEC104 campaign succeeded")
	}
}

// TestCheckpointWorkerMismatch: the checkpoint carries the fleet's worker
// count; a campaign built with different parallelism cannot restore it.
func TestCheckpointWorkerMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	donor := newCheckpointCampaign(t, "libmodbus", 2, false, false)
	donor.Run(4000)
	if err := donor.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	serial := newCheckpointCampaign(t, "libmodbus", 1, false, false)
	if err := serial.RestoreCheckpoint(path); err == nil {
		t.Fatal("restoring a 2-worker checkpoint into a serial campaign succeeded")
	}
}

// TestCheckpointCorruptRejected: header damage (magic, version, digest)
// and truncation anywhere must fail the restore with an error, never a
// panic or a silent partial state.
func TestCheckpointCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "good.ckpt")
	donor := newCheckpointCampaign(t, "libmodbus", 1, true, false)
	donor.Run(5000)
	if err := donor.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.ckpt")
	tryRestore := func(data []byte) error {
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c := newCheckpointCampaign(t, "libmodbus", 1, true, false)
		return c.RestoreCheckpoint(bad)
	}

	for _, i := range []int{0, 4, 5, 12} { // magic, version, digest
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xFF
		if tryRestore(mut) == nil {
			t.Errorf("restore accepted a checkpoint with byte %d flipped", i)
		}
	}
	for _, n := range []int{0, 3, 5, len(good) / 2, len(good) - 1} {
		if tryRestore(good[:n]) == nil {
			t.Errorf("restore accepted a checkpoint truncated to %d bytes", n)
		}
	}
}

// TestRunConfigCheckpointPath drives the in-session half: a session with
// CheckpointPath set writes periodic checkpoints at merge-window
// boundaries plus a final one, reports them as CheckpointEvents, and the
// file warm-restarts a fresh campaign.
func TestRunConfigCheckpointPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.ckpt")
	c := newCheckpointCampaign(t, "libmodbus", 1, false, false)
	run, err := c.Start(context.Background(), peachstar.RunConfig{
		Execs:           6000,
		CheckpointPath:  path,
		CheckpointEvery: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for ev := range run.Events() {
		if ck, ok := ev.(peachstar.CheckpointEvent); ok {
			if ck.Err != nil {
				t.Errorf("checkpoint at %d execs failed: %v", ck.Execs, ck.Err)
			}
			if ck.Path != path || ck.Bytes == 0 {
				t.Errorf("malformed checkpoint event: %+v", ck)
			}
			events++
		}
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	// 6000 execs at a 2048 cadence: checkpoints at 2048, 4096, and the
	// final one after the last window.
	if events < 3 {
		t.Fatalf("saw %d checkpoint events, want >= 3", events)
	}

	restored := newCheckpointCampaign(t, "libmodbus", 1, false, false)
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint lands after the final window, so nothing is
	// lost: the restored campaign has the session's full exec count.
	if got, want := restored.Stats(), c.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("final checkpoint does not capture the session's end state:\n got %+v\nwant %+v", got, want)
	}
}

// fuzzFleet is the shared restore target of FuzzCheckpointDecode: one
// small fleet per fuzz process, restored over and over from hostile
// bytes. Reuse across inputs is deliberate — a failed restore leaves
// partial state, and the next input must still decode without panicking.
var fuzzFleet struct {
	once   sync.Once
	fleet  *core.Fleet
	digest uint64
	seed   []byte
}

// FuzzCheckpointDecode pins the no-panic property of the whole restore
// path — envelope parsing, every layer's Restore, the cross-layer
// validation — over truncated, corrupt, bit-flipped and non-minimal-varint
// inputs. Errors are the expected outcome; panics and hangs are the bugs.
func FuzzCheckpointDecode(f *testing.F) {
	setup := func(tb testing.TB) {
		fuzzFleet.once.Do(func() {
			tgt, err := targets.New("libmodbus")
			if err != nil {
				tb.Fatal(err)
			}
			fleet, err := core.NewFleet(core.Config{
				Models:   tgt.Models(),
				Target:   tgt,
				Strategy: core.StrategyPeachStar,
				Seed:     1,
				Adaptive: true,
			}, core.ParallelConfig{Workers: 1})
			if err != nil {
				tb.Fatal(err)
			}
			fleet.Drive(nil, core.Budget{Execs: 3000}, nil)
			fuzzFleet.fleet = fleet
			fuzzFleet.digest = fleetnet.ModelDigest("libmodbus", tgt.Models())
			fuzzFleet.seed = fleet.Checkpoint(fuzzFleet.digest)
		})
	}
	setup(f)

	good := fuzzFleet.seed
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("PSCK"))
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-1])
	// Non-minimal varint: 0x80 0x00 spliced after the header.
	nonMin := append([]byte(nil), good[:13]...)
	nonMin = append(nonMin, 0x80, 0x00)
	nonMin = append(nonMin, good[13:]...)
	f.Add(nonMin)
	for _, i := range []int{0, 4, 5, 13, len(good) / 2, len(good) - 2} {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x81
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		setup(t)
		// Outcome is unspecified (garbage usually errors, the seed input
		// succeeds); what the fuzz pins is no panic, no unbounded
		// allocation, no hang.
		_ = fuzzFleet.fleet.RestoreCheckpoint(data, fuzzFleet.digest)
	})
}
